//! Open-loop load generation: deterministic arrival processes and SLA
//! mixes over a fixed request queue.
//!
//! A [`LoadGen`] turns a plain request queue into an online trace by
//! stamping each request with an arrival cycle and an SLA contract. The
//! generators are **open-loop** (arrival times never depend on service
//! times) and fully deterministic: the shim `rand` crate's xoshiro256++
//! is seeded explicitly, so the same `(queue, process, sla, seed)`
//! reproduces the same trace bit for bit on any host.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::{Cycle, SimClock};
use crate::request::{InferenceRequest, OnlineRequest, QualityTier, SlaClass};

/// How arrival timestamps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Everything arrives at cycle 0 — the legacy all-at-once queue,
    /// expressed as a (degenerate) online trace.
    Static,
    /// Poisson arrivals: exponential inter-arrival gaps at `rate_rps`
    /// requests per second.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Bursty arrivals: groups of `burst` requests land together; the
    /// groups themselves follow a Poisson process whose rate is chosen so
    /// the *long-run* request rate is still `rate_rps`.
    Bursty {
        /// Long-run mean arrival rate, requests per second.
        rate_rps: f64,
        /// Requests per burst (≥ 1).
        burst: usize,
    },
}

impl ArrivalProcess {
    /// Short CLI token (`static`, `poisson`, `bursty`).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Static => "static",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }
}

/// How SLA classes are assigned across the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlaMix {
    /// Every request gets the same class at full quality.
    Uniform(SlaClass),
    /// A fixed four-request rotation: interactive/full, standard/full,
    /// batch/full, standard/economy — one tight class, bulk traffic, and
    /// a degradable tier, all in one trace.
    Mixed,
}

impl SlaMix {
    /// Short CLI token.
    pub fn name(&self) -> &'static str {
        match self {
            SlaMix::Uniform(sla) => sla.name(),
            SlaMix::Mixed => "mixed",
        }
    }

    /// The (class, tier) assigned to the `index`-th request of the queue.
    pub fn assign(&self, index: usize) -> (SlaClass, QualityTier) {
        match self {
            SlaMix::Uniform(sla) => (*sla, QualityTier::Full),
            SlaMix::Mixed => match index % 4 {
                0 => (SlaClass::Interactive, QualityTier::Full),
                1 => (SlaClass::Standard, QualityTier::Full),
                2 => (SlaClass::Batch, QualityTier::Full),
                _ => (SlaClass::Standard, QualityTier::Economy),
            },
        }
    }
}

impl std::fmt::Display for SlaMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SlaMix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mixed" => Ok(SlaMix::Mixed),
            other => match other.parse::<SlaClass>() {
                Ok(sla) => Ok(SlaMix::Uniform(sla)),
                Err(_) => Err(format!(
                    "unknown SLA mix `{other}` (use interactive|standard|batch|mixed)"
                )),
            },
        }
    }
}

/// A deterministic open-loop load generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadGen {
    /// Arrival process.
    pub process: ArrivalProcess,
    /// SLA assignment.
    pub sla: SlaMix,
    /// Seed for the arrival RNG (independent of request payload seeds).
    pub seed: u64,
}

impl LoadGen {
    /// Stamps `queue` into an online trace (arrival-ordered; ties keep
    /// queue order, which the stamping preserves by construction).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite rate, or a zero burst size.
    pub fn generate(&self, queue: &[InferenceRequest], clock: &SimClock) -> Vec<OnlineRequest> {
        let arrivals: Vec<Cycle> = match self.process {
            ArrivalProcess::Static => vec![0; queue.len()],
            ArrivalProcess::Poisson { rate_rps } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
                let mut t = 0.0f64;
                queue
                    .iter()
                    .map(|_| {
                        t += exponential_gap(&mut rng, rate_rps);
                        clock.to_cycles(t)
                    })
                    .collect()
            }
            ArrivalProcess::Bursty { rate_rps, burst } => {
                assert!(burst >= 1, "bursts must hold at least one request");
                // Groups arrive Poisson at rate/burst so the long-run
                // request rate matches the configured rate_rps.
                let group_rate = {
                    assert!(
                        rate_rps.is_finite() && rate_rps > 0.0,
                        "arrival rate must be finite and positive, got {rate_rps}"
                    );
                    rate_rps / burst as f64
                };
                let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
                let mut t = 0.0f64;
                let mut arrivals = Vec::with_capacity(queue.len());
                while arrivals.len() < queue.len() {
                    t += exponential_gap(&mut rng, group_rate);
                    let at = clock.to_cycles(t);
                    for _ in 0..burst.min(queue.len() - arrivals.len()) {
                        arrivals.push(at);
                    }
                }
                arrivals
            }
        };
        queue
            .iter()
            .zip(arrivals)
            .enumerate()
            .map(|(i, (&request, arrival))| {
                let (sla, tier) = self.sla.assign(i);
                OnlineRequest::new(request, arrival, sla, tier)
            })
            .collect()
    }
}

/// One exponential inter-arrival gap (seconds) at `rate` per second.
fn exponential_gap(rng: &mut rand::rngs::StdRng, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "arrival rate must be finite and positive, got {rate}"
    );
    // Inverse-CDF sampling; 1-u keeps the argument in (0, 1] so ln() is
    // finite.
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnie_gnn::model::GnnModel;
    use gnnie_graph::Dataset;

    fn queue(n: u64) -> Vec<InferenceRequest> {
        (0..n).map(|i| InferenceRequest::new(i, GnnModel::Gcn, Dataset::Cora, 0.1, i)).collect()
    }

    fn clock() -> SimClock {
        SimClock::new(1.0e9)
    }

    #[test]
    fn static_arrivals_all_land_at_zero() {
        let gen = LoadGen { process: ArrivalProcess::Static, sla: SlaMix::Mixed, seed: 1 };
        let trace = gen.generate(&queue(6), &clock());
        assert!(trace.iter().all(|r| r.arrival == 0));
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_nondecreasing() {
        let gen = LoadGen {
            process: ArrivalProcess::Poisson { rate_rps: 1000.0 },
            sla: SlaMix::Uniform(SlaClass::Standard),
            seed: 42,
        };
        let a = gen.generate(&queue(32), &clock());
        let b = gen.generate(&queue(32), &clock());
        assert_eq!(a, b, "same seed must reproduce the trace bit for bit");
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.last().unwrap().arrival > 0, "arrivals must actually spread out");
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let base = LoadGen {
            process: ArrivalProcess::Poisson { rate_rps: 1000.0 },
            sla: SlaMix::Uniform(SlaClass::Standard),
            seed: 1,
        };
        let other = LoadGen { seed: 2, ..base };
        assert_ne!(base.generate(&queue(16), &clock()), other.generate(&queue(16), &clock()));
    }

    #[test]
    fn bursts_share_arrival_cycles() {
        let gen = LoadGen {
            process: ArrivalProcess::Bursty { rate_rps: 1000.0, burst: 4 },
            sla: SlaMix::Uniform(SlaClass::Batch),
            seed: 7,
        };
        let trace = gen.generate(&queue(12), &clock());
        for group in trace.chunks(4) {
            assert!(group.iter().all(|r| r.arrival == group[0].arrival));
        }
        assert!(trace[0].arrival != trace[4].arrival || trace[4].arrival != trace[8].arrival);
    }

    #[test]
    fn mixed_sla_rotation_is_fixed() {
        let gen = LoadGen { process: ArrivalProcess::Static, sla: SlaMix::Mixed, seed: 0 };
        let trace = gen.generate(&queue(8), &clock());
        let got: Vec<(SlaClass, QualityTier)> = trace.iter().map(|r| (r.sla, r.tier)).collect();
        assert_eq!(
            got[..4],
            [
                (SlaClass::Interactive, QualityTier::Full),
                (SlaClass::Standard, QualityTier::Full),
                (SlaClass::Batch, QualityTier::Full),
                (SlaClass::Standard, QualityTier::Economy),
            ]
        );
        assert_eq!(got[..4], got[4..]);
    }

    #[test]
    fn sla_mix_tokens_round_trip() {
        for token in ["interactive", "standard", "batch", "mixed"] {
            assert_eq!(token.parse::<SlaMix>().unwrap().name(), token);
        }
        assert!("gold".parse::<SlaMix>().is_err());
    }
}
