//! The online continuous-batching scheduler: simulated-clock arrivals,
//! SLA-aware admission, and deadline-ordered batch fill.
//!
//! Unlike the static [`BatchScheduler`](crate::BatchScheduler), which
//! sees the whole queue at t = 0, this scheduler replays an arrival
//! trace on the simulated clock and decides *when* to cut each batch:
//! it trades batch fill (more followers amortizing one weight load)
//! against deadline slack (a tight-SLA head request cannot afford to
//! wait for stragglers). The whole loop is exact integer cycle
//! arithmetic over pre-simulated per-request costs, so a trace replays
//! bit-identically at any host-side thread count.
//!
//! Scheduling rules, in order:
//!
//! 1. **Admission.** At arrival, a request's completion is predicted as
//!    `max(now the aggregation resource frees, arrival) + resident
//!    backlog of everything pending + the request's own cold cost`. A
//!    deadline-class request predicted to miss is rejected — unless its
//!    [`QualityTier::Economy`] lets it degrade to best-effort
//!    (deadline-free) instead. [`SlaClass::Batch`] is never rejected.
//! 2. **Urgency.** The head of the queue is the pending request with
//!    the earliest deadline (deadline-free requests sort last), ties
//!    broken by arrival then id. A request with strictly more slack
//!    never preempts one with less in its own model group.
//! 3. **Fill vs. slack.** The head's batch fills with pending requests
//!    of the same [`ModelKey`] in urgency order, up to `max_batch`. An
//!    underfull batch *waits* for the next arrival only if the head can
//!    afford it: always, when the head has no deadline; otherwise only
//!    when dispatching at the next arrival would still (by the current
//!    estimate) meet the head's deadline.
//! 4. **Residency.** Weights stay resident across *consecutive* batches
//!    of the same key — the second batch's leader skips the weight
//!    load, the way the daemon keeps a model warm between dispatches.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use gnnie_core::report::InferenceReport;

use crate::clock::{Cycle, SimClock};
use crate::pipeline::{BatchProfile, PipelineState};
use crate::request::{ModelKey, OnlineRequest, QualityTier, SlaClass};
use crate::server::{percentile_nearest_rank, report_profile};

/// A request's pre-simulated service costs — the scheduler's oracle.
///
/// Both variants come from real engine runs ([`RequestCost::from_reports`])
/// or synthetic profiles in tests; the scheduler itself never simulates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestCost {
    /// The request's footprint paying its own weight loads (batch leader
    /// with no resident carry-over).
    pub cold: BatchProfile,
    /// Its footprint with the batch's weights already resident.
    pub resident: BatchProfile,
}

impl RequestCost {
    /// A cost from explicit profiles.
    pub fn new(cold: BatchProfile, resident: BatchProfile) -> Self {
        RequestCost { cold, resident }
    }

    /// Extracts both profiles from a cold and a resident engine report of
    /// the same request.
    pub fn from_reports(cold: &InferenceReport, resident: &InferenceReport) -> Self {
        RequestCost { cold: report_profile(cold), resident: report_profile(resident) }
    }

    /// Isolated service cycles when leading a cold batch.
    pub fn cold_cycles(&self) -> Cycle {
        self.cold.serial_cycles()
    }

    /// Isolated service cycles with resident weights (the deadline-slack
    /// unit).
    pub fn resident_cycles(&self) -> Cycle {
        self.resident.serial_cycles()
    }
}

/// Online scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Hard cap on requests per batch (≥ 1).
    pub max_batch: usize,
    /// Whether predicted deadline misses are rejected (or degraded) at
    /// arrival. Off = accept everything and let the hit rate record the
    /// damage.
    pub admission_control: bool,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig { max_batch: 8, admission_control: true }
    }
}

/// One served request's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// The request, with its arrival stamp and contract.
    pub request: OnlineRequest,
    /// Index of the batch it rode in.
    pub batch: usize,
    /// Cycle the batch was cut and enqueued on the pipeline.
    pub dispatch: Cycle,
    /// Cycle the batch (hence the request) completed.
    pub completion: Cycle,
    /// Absolute deadline, if the request kept one.
    pub deadline: Option<Cycle>,
    /// Whether the deadline was met (vacuously true without one).
    pub deadline_met: bool,
    /// Whether admission demoted the request to best-effort.
    pub degraded: bool,
    /// Whether it ran with resident weights (followers always; leaders
    /// only on a same-model carry-over).
    pub weights_resident: bool,
    /// Arrival-to-completion latency in simulated seconds.
    pub latency_s: f64,
}

/// A request admission control turned away.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejectedRequest {
    /// The rejected request.
    pub request: OnlineRequest,
    /// The completion cycle admission predicted.
    pub predicted_completion: Cycle,
    /// The deadline it would have missed.
    pub deadline: Cycle,
}

/// One dispatched batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineBatchReport {
    /// Dispatch order.
    pub index: usize,
    /// The shared weight-compatibility key.
    pub key: ModelKey,
    /// Requests in the batch.
    pub size: usize,
    /// Cycle the batch was enqueued.
    pub dispatch: Cycle,
    /// Cycle it completed.
    pub completion: Cycle,
    /// Whether the leader reused weights left resident by the previous
    /// batch.
    pub leader_resident: bool,
}

/// The full online-serving record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Served requests, in batch/dispatch order.
    pub outcomes: Vec<OnlineOutcome>,
    /// Admission rejections, in arrival order.
    pub rejected: Vec<RejectedRequest>,
    /// Batches, in dispatch order.
    pub batches: Vec<OnlineBatchReport>,
    /// Cycle the last batch completed (0 on an empty trace).
    pub makespan_cycles: Cycle,
    /// Accelerator clock the cycle counts are reported in.
    pub clock_hz: f64,
    /// Batch-size cap used.
    pub max_batch: usize,
    /// Whether admission control was on.
    pub admission_control: bool,
}

impl OnlineReport {
    /// Served requests per simulated second of makespan (0.0 on an empty
    /// run).
    pub fn throughput_rps(&self) -> f64 {
        let seconds = self.makespan_cycles as f64 / self.clock_hz;
        if !seconds.is_finite() || seconds <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / seconds
    }

    /// Nearest-rank latency percentile over all served requests.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        percentile_nearest_rank(&self.latencies(|_| true), q)
    }

    /// Nearest-rank latency percentile over requests that *arrived* in
    /// `sla` (degraded requests still count toward their original class).
    pub fn class_percentile(&self, sla: SlaClass, q: f64) -> f64 {
        percentile_nearest_rank(&self.latencies(|o| o.request.sla == sla), q)
    }

    /// Served requests that arrived in `sla`.
    pub fn class_served(&self, sla: SlaClass) -> usize {
        self.outcomes.iter().filter(|o| o.request.sla == sla).count()
    }

    /// p50 latency in simulated seconds.
    pub fn p50_latency_s(&self) -> f64 {
        self.latency_percentile(0.50)
    }

    /// p95 latency in simulated seconds.
    pub fn p95_latency_s(&self) -> f64 {
        self.latency_percentile(0.95)
    }

    /// p99 latency in simulated seconds.
    pub fn p99_latency_s(&self) -> f64 {
        self.latency_percentile(0.99)
    }

    /// Fraction of deadline-carrying served requests that met their
    /// deadline (1.0 when none carried one).
    pub fn deadline_hit_rate(&self) -> f64 {
        let with: Vec<&OnlineOutcome> =
            self.outcomes.iter().filter(|o| o.deadline.is_some()).collect();
        if with.is_empty() {
            return 1.0;
        }
        with.iter().filter(|o| o.deadline_met).count() as f64 / with.len() as f64
    }

    /// Fraction of offered requests admission turned away.
    pub fn reject_rate(&self) -> f64 {
        let offered = self.outcomes.len() + self.rejected.len();
        if offered == 0 {
            return 0.0;
        }
        self.rejected.len() as f64 / offered as f64
    }

    /// Fraction of served requests admission degraded to best-effort.
    pub fn degrade_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.degraded).count() as f64 / self.outcomes.len() as f64
    }

    /// Ids of every served request, in dispatch order.
    pub fn served_ids(&self) -> Vec<u64> {
        self.outcomes.iter().map(|o| o.request.id()).collect()
    }

    /// Nearest-rank queue-wait (arrival → dispatch) percentile, in
    /// simulated seconds, over requests that arrived in `sla`.
    pub fn class_queue_wait_percentile(&self, sla: SlaClass, q: f64) -> f64 {
        let waits: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.request.sla == sla)
            .map(|o| o.dispatch.saturating_sub(o.request.arrival) as f64 / self.clock_hz)
            .collect();
        percentile_nearest_rank(&waits, q)
    }

    /// Queue wait of one outcome in simulated seconds.
    fn queue_wait_s(&self, o: &OnlineOutcome) -> f64 {
        o.dispatch.saturating_sub(o.request.arrival) as f64 / self.clock_hz
    }

    /// Emits the serving timeline onto `trace` (no-op when off): per SLA
    /// class, each request's `enqueue` marker at arrival, its `wait` span
    /// (arrival → dispatch; admission decides at arrival in this
    /// scheduler, so admit coincides with enqueue), and its `service`
    /// span (dispatch → completion); rejected requests get a `reject`
    /// marker; the `serve/batches` track carries one span per dispatched
    /// batch. Derived purely from the report, which is already
    /// bit-identical at any host thread count.
    pub fn emit_trace(&self, trace: &gnnie_obs::Trace) {
        if !trace.enabled() {
            return;
        }
        for o in &self.outcomes {
            let id = o.request.id();
            let class = o.request.sla.name();
            trace.instant("serve", class, &format!("enqueue req{id}"), o.request.arrival, &[]);
            trace.span(
                "serve",
                class,
                &format!("wait req{id}"),
                o.request.arrival,
                o.dispatch.saturating_sub(o.request.arrival),
                &[
                    ("batch", (o.batch as u64).into()),
                    ("degraded", if o.degraded { "yes" } else { "no" }.into()),
                ],
            );
            trace.span(
                "serve",
                class,
                &format!("service req{id}"),
                o.dispatch,
                o.completion.saturating_sub(o.dispatch),
                &[("deadline_met", if o.deadline_met { "yes" } else { "no" }.into())],
            );
        }
        for r in &self.rejected {
            trace.instant(
                "serve",
                r.request.sla.name(),
                &format!("reject req{}", r.request.id()),
                r.request.arrival,
                &[("predicted_completion", r.predicted_completion.into())],
            );
        }
        for b in &self.batches {
            trace.span(
                "serve",
                "batches",
                &format!("batch{} x{}", b.index, b.size),
                b.dispatch,
                b.completion.saturating_sub(b.dispatch),
                &[
                    ("size", (b.size as u64).into()),
                    ("leader_resident", if b.leader_resident { "yes" } else { "no" }.into()),
                ],
            );
        }
    }

    /// Records the run's serving metrics (no-op when off): `serve.online.*`
    /// totals plus per-SLA-class `serve.queue_wait_us.<class>` and
    /// `serve.latency_us.<class>` histograms — the registry surface the
    /// daemon drain report reads its queue-wait percentiles from.
    pub fn record_metrics(&self, metrics: &gnnie_obs::Metrics) {
        if !metrics.enabled() {
            return;
        }
        metrics.counter_add("serve.online.served", self.outcomes.len() as u64);
        metrics.counter_add("serve.online.rejected", self.rejected.len() as u64);
        metrics.counter_add(
            "serve.online.degraded",
            self.outcomes.iter().filter(|o| o.degraded).count() as u64,
        );
        metrics.counter_add("serve.online.batches", self.batches.len() as u64);
        metrics.counter_add("serve.online.makespan_cycles", self.makespan_cycles);
        for o in &self.outcomes {
            let class = o.request.sla.name();
            metrics
                .observe(&format!("serve.queue_wait_us.{class}"), self.queue_wait_s(o) * 1e6);
            metrics.observe(&format!("serve.latency_us.{class}"), o.latency_s * 1e6);
        }
    }

    /// Both surfaces at once.
    pub fn record_obs(&self, obs: &gnnie_obs::Obs) {
        self.emit_trace(&obs.trace);
        self.record_metrics(&obs.metrics);
    }

    fn latencies(&self, keep: impl Fn(&OnlineOutcome) -> bool) -> Vec<f64> {
        self.outcomes.iter().filter(|o| keep(o)).map(|o| o.latency_s).collect()
    }
}

/// A pending (admitted, not yet dispatched) request.
#[derive(Debug, Clone, Copy)]
struct Pending {
    req: OnlineRequest,
    deadline: Option<Cycle>,
    degraded: bool,
}

impl Pending {
    /// Dispatch priority: earliest deadline first, deadline-free last;
    /// ties by arrival then id.
    fn urgency(&self) -> (Cycle, Cycle, u64) {
        (self.deadline.unwrap_or(Cycle::MAX), self.req.arrival, self.req.id())
    }
}

/// [`schedule_online`] with an observability bundle: the report's batch
/// lifecycles land on `obs.trace` and its per-class queue-wait/latency
/// histograms in `obs.metrics`. The returned report is byte-identical to
/// the unobserved call — observability is emitted *from* the finished
/// report, never woven into the scheduling loop.
pub fn schedule_online_observed(
    trace: &[OnlineRequest],
    costs: &HashMap<u64, RequestCost>,
    cfg: &OnlineConfig,
    clock: &SimClock,
    obs: &gnnie_obs::Obs,
) -> OnlineReport {
    let report = schedule_online(trace, costs, cfg, clock);
    report.record_obs(obs);
    report
}

/// Replays `trace` through the continuous-batching scheduler using the
/// pre-simulated `costs` (keyed by request id) as the service oracle.
///
/// Every trace request appears exactly once in the report, either served
/// or rejected. Batches are model-homogeneous and at most
/// `cfg.max_batch` long.
///
/// # Panics
///
/// Panics if a trace request has no cost entry or `cfg.max_batch` is 0.
pub fn schedule_online(
    trace: &[OnlineRequest],
    costs: &HashMap<u64, RequestCost>,
    cfg: &OnlineConfig,
    clock: &SimClock,
) -> OnlineReport {
    assert!(cfg.max_batch >= 1, "batches must hold at least one request");
    let cost_of = |id: u64| -> &RequestCost {
        costs.get(&id).unwrap_or_else(|| panic!("no cost profiled for request {id}"))
    };

    // Arrival order: time, ties by id (the loadgen emits queue order).
    let mut arrivals: Vec<OnlineRequest> = trace.to_vec();
    arrivals.sort_by_key(|r| (r.arrival, r.id()));

    let mut next = 0usize; // arrival cursor
    let mut pending: Vec<Pending> = Vec::new();
    let mut state = PipelineState::new();
    let mut resident_key: Option<ModelKey> = None;
    let mut now: Cycle = 0;

    let mut outcomes = Vec::new();
    let mut rejected = Vec::new();
    let mut batches = Vec::new();

    loop {
        // Admit everything that has arrived by `now`, in arrival order.
        while next < arrivals.len() && arrivals[next].arrival <= now {
            let req = arrivals[next];
            next += 1;
            let cost = cost_of(req.id());
            let deadline = req.deadline(cost.resident_cycles());
            if !cfg.admission_control {
                pending.push(Pending { req, deadline, degraded: false });
                continue;
            }
            match deadline {
                None => pending.push(Pending { req, deadline: None, degraded: false }),
                Some(d) => {
                    let backlog: Cycle =
                        pending.iter().map(|p| cost_of(p.req.id()).resident_cycles()).sum();
                    let predicted =
                        state.a_free.max(req.arrival) + backlog + cost.cold_cycles();
                    if predicted > d {
                        match req.tier {
                            QualityTier::Economy => {
                                // Degrade to best-effort instead of turning
                                // the caller away.
                                pending.push(Pending { req, deadline: None, degraded: true });
                            }
                            QualityTier::Full => rejected.push(RejectedRequest {
                                request: req,
                                predicted_completion: predicted,
                                deadline: d,
                            }),
                        }
                    } else {
                        pending.push(Pending { req, deadline: Some(d), degraded: false });
                    }
                }
            }
        }

        if pending.is_empty() {
            match arrivals.get(next) {
                Some(r) => {
                    now = now.max(r.arrival);
                    continue;
                }
                None => break,
            }
        }

        // Head = most urgent pending; its batch fills with same-key
        // requests in urgency order.
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&i| pending[i].urgency());
        let head = &pending[order[0]];
        let key = head.req.model_key();
        let head_deadline = head.deadline;
        let members: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| pending[i].req.model_key() == key)
            .take(cfg.max_batch)
            .collect();
        let leader_resident = resident_key == Some(key);
        let profile = merged_profile(&pending, &members, leader_resident, cost_of);

        // Fill-vs-slack: wait for the next arrival iff the head can
        // afford to (see the module docs).
        if members.len() < cfg.max_batch {
            if let Some(next_req) = arrivals.get(next) {
                let wait = match head_deadline {
                    None => true,
                    Some(d) => {
                        let mut probe = state;
                        probe.push(&profile, next_req.arrival) <= d
                    }
                };
                if wait {
                    now = now.max(next_req.arrival);
                    continue;
                }
            }
        }

        // Dispatch at `now`.
        let completion = state.push(&profile, now);
        let index = batches.len();
        batches.push(OnlineBatchReport {
            index,
            key,
            size: members.len(),
            dispatch: now,
            completion,
            leader_resident,
        });
        for (pos, &m) in members.iter().enumerate() {
            let p = pending[m];
            outcomes.push(OnlineOutcome {
                request: p.req,
                batch: index,
                dispatch: now,
                completion,
                deadline: p.deadline,
                deadline_met: !p.deadline.is_some_and(|d| completion > d),
                degraded: p.degraded,
                weights_resident: pos > 0 || leader_resident,
                latency_s: clock.to_seconds(completion - p.req.arrival),
            });
        }
        resident_key = Some(key);
        let dispatched: std::collections::HashSet<u64> =
            members.iter().map(|&m| pending[m].req.id()).collect();
        pending.retain(|p| !dispatched.contains(&p.req.id()));
    }

    OnlineReport {
        makespan_cycles: batches.iter().map(|b| b.completion).max().unwrap_or(0),
        outcomes,
        rejected,
        batches,
        clock_hz: clock.clock_hz,
        max_batch: cfg.max_batch,
        admission_control: cfg.admission_control,
    }
}

/// The batch's merged resource footprint: leader cold unless weights
/// carried over, followers resident.
fn merged_profile<'a>(
    pending: &[Pending],
    members: &[usize],
    leader_resident: bool,
    cost_of: impl Fn(u64) -> &'a RequestCost,
) -> BatchProfile {
    let mut profile = BatchProfile::default();
    for (pos, &m) in members.iter().enumerate() {
        let cost = cost_of(pending[m].req.id());
        let part = if pos == 0 && !leader_resident { &cost.cold } else { &cost.resident };
        profile.merge(part);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PhasePair;
    use crate::request::InferenceRequest;
    use gnnie_gnn::model::GnnModel;
    use gnnie_graph::Dataset;

    fn clock() -> SimClock {
        SimClock::new(1.0e9)
    }

    /// One-layer cost: cold Weighting 100 (weight load included),
    /// resident Weighting 10, Aggregation 50 both ways.
    fn cost() -> RequestCost {
        let layer = |w: u64| BatchProfile {
            pre_cycles: 0,
            layers: vec![PhasePair { weighting: w, aggregation: 50 }],
            post_cycles: 0,
        };
        RequestCost::new(layer(100), layer(10))
    }

    fn req(id: u64, arrival: Cycle, sla: SlaClass, tier: QualityTier) -> OnlineRequest {
        OnlineRequest::new(
            InferenceRequest::new(id, GnnModel::Gcn, Dataset::Cora, 0.1, id),
            arrival,
            sla,
            tier,
        )
    }

    fn costs_for(trace: &[OnlineRequest]) -> HashMap<u64, RequestCost> {
        trace.iter().map(|r| (r.id(), cost())).collect()
    }

    #[test]
    fn full_batch_at_time_zero_amortizes_the_leader_load() {
        let trace: Vec<_> =
            (0..4).map(|i| req(i, 0, SlaClass::Batch, QualityTier::Full)).collect();
        let cfg = OnlineConfig { max_batch: 4, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        assert_eq!(report.batches.len(), 1);
        // Merged profile: W = 100 + 3·10 = 130, A = 4·50 = 200.
        assert_eq!(report.makespan_cycles, 330);
        assert_eq!(
            report.outcomes.iter().map(|o| o.weights_resident).collect::<Vec<_>>(),
            [false, true, true, true]
        );
        assert!(report.rejected.is_empty());
        assert_eq!(report.deadline_hit_rate(), 1.0);
    }

    #[test]
    fn residency_carries_across_consecutive_same_key_batches() {
        let trace: Vec<_> =
            (0..4).map(|i| req(i, 0, SlaClass::Batch, QualityTier::Full)).collect();
        let cfg = OnlineConfig { max_batch: 2, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        assert_eq!(report.batches.len(), 2);
        // Batch 0 (cold leader): W [0,110), A [110,210).
        // Batch 1 (carry-over leader): W [110,130), A [210,310).
        assert_eq!(report.batches[0].completion, 210);
        assert_eq!(report.batches[1].completion, 310);
        assert!(!report.batches[0].leader_resident);
        assert!(report.batches[1].leader_resident);
        assert!(report.outcomes[2].weights_resident, "carried-over leader skips the load");
    }

    #[test]
    fn tighter_deadlines_dispatch_first() {
        let trace = vec![
            req(0, 0, SlaClass::Standard, QualityTier::Full),
            req(1, 0, SlaClass::Interactive, QualityTier::Full),
            req(2, 0, SlaClass::Interactive, QualityTier::Full),
            req(3, 0, SlaClass::Batch, QualityTier::Full),
        ];
        let cfg = OnlineConfig { max_batch: 2, admission_control: false };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        assert_eq!(report.served_ids(), [1, 2, 0, 3]);
        assert_eq!(report.batches.len(), 2);
    }

    #[test]
    fn admission_rejects_full_tier_and_degrades_economy() {
        // Resident service = 60 ⇒ interactive deadline = 240. The third
        // interactive arrival predicts 0 + backlog 120 + cold 150 = 270.
        let trace = vec![
            req(0, 0, SlaClass::Interactive, QualityTier::Full),
            req(1, 0, SlaClass::Interactive, QualityTier::Full),
            req(2, 0, SlaClass::Interactive, QualityTier::Full),
            req(3, 0, SlaClass::Interactive, QualityTier::Economy),
        ];
        let cfg = OnlineConfig { max_batch: 4, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].request.id(), 2);
        assert_eq!(report.rejected[0].predicted_completion, 270);
        assert_eq!(report.rejected[0].deadline, 240);
        let degraded: Vec<u64> =
            report.outcomes.iter().filter(|o| o.degraded).map(|o| o.request.id()).collect();
        assert_eq!(degraded, [3], "economy tier degrades instead of rejecting");
        assert_eq!(report.served_ids().len(), 3);
        assert!(report.reject_rate() > 0.0 && report.degrade_rate() > 0.0);
    }

    #[test]
    fn batch_class_is_never_rejected() {
        let mut trace: Vec<_> =
            (0..8).map(|i| req(i, 0, SlaClass::Interactive, QualityTier::Full)).collect();
        trace.extend((8..16).map(|i| req(i, 0, SlaClass::Batch, QualityTier::Full)));
        let cfg = OnlineConfig { max_batch: 4, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        for r in &report.rejected {
            assert_ne!(r.request.sla, SlaClass::Batch);
        }
        let served: std::collections::HashSet<u64> = report.served_ids().into_iter().collect();
        assert!((8..16).all(|i| served.contains(&i)), "all batch-class requests served");
    }

    #[test]
    fn deadline_free_head_waits_to_fill_its_batch() {
        let trace = vec![
            req(0, 0, SlaClass::Batch, QualityTier::Full),
            req(1, 1_000, SlaClass::Batch, QualityTier::Full),
        ];
        let cfg = OnlineConfig { max_batch: 2, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        assert_eq!(report.batches.len(), 1, "the lone request waits for the second arrival");
        assert_eq!(report.batches[0].dispatch, 1_000);
        // Merged: W [1000,1110), A [1110,1210).
        assert_eq!(report.makespan_cycles, 1_210);
    }

    #[test]
    fn tight_deadline_head_dispatches_underfull_instead_of_waiting() {
        let trace = vec![
            req(0, 0, SlaClass::Interactive, QualityTier::Full),
            req(1, 1_000_000, SlaClass::Batch, QualityTier::Full),
        ];
        let cfg = OnlineConfig { max_batch: 2, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        assert_eq!(report.batches.len(), 2, "waiting would blow the 240-cycle deadline");
        assert_eq!(report.batches[0].dispatch, 0);
        assert_eq!(report.batches[0].completion, 150);
        assert!(report.outcomes[0].deadline_met);
        // The second batch reuses the resident weights a million cycles
        // later: W [1e6, 1e6+10), A [.., +50).
        assert!(report.batches[1].leader_resident);
        assert_eq!(report.batches[1].completion, 1_000_060);
    }

    #[test]
    fn every_request_is_served_or_rejected_exactly_once() {
        let trace: Vec<_> = (0..32)
            .map(|i| {
                let sla = SlaClass::ALL[(i % 3) as usize];
                req(i, i * 37, sla, QualityTier::Full)
            })
            .collect();
        let cfg = OnlineConfig { max_batch: 3, admission_control: true };
        let report = schedule_online(&trace, &costs_for(&trace), &cfg, &clock());
        let mut seen: Vec<u64> = report
            .served_ids()
            .into_iter()
            .chain(report.rejected.iter().map(|r| r.request.id()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_trace_reports_cleanly() {
        let report = schedule_online(&[], &HashMap::new(), &OnlineConfig::default(), &clock());
        assert_eq!(report.makespan_cycles, 0);
        assert_eq!(report.throughput_rps(), 0.0);
        assert_eq!(report.deadline_hit_rate(), 1.0);
        assert_eq!(report.reject_rate(), 0.0);
        assert_eq!(report.p99_latency_s(), 0.0);
    }
}
