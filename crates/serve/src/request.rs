//! Inference requests and their weight-compatibility grouping key.

use serde::{Deserialize, Serialize};

use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_graph::{Dataset, SyntheticDataset};

/// One queued inference question: run `model` over an instance of
/// `dataset` synthesized at `scale` from `seed`.
///
/// Requests with equal [`model_key`](InferenceRequest::model_key)s
/// instantiate byte-identical [`ModelConfig`]s (the Table III stack's
/// dimensions depend only on model, dataset, and scale), so their layer
/// weights are interchangeable — the batch scheduler groups them so the
/// weights stream from DRAM once per batch instead of once per request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Caller-chosen identity (unique per queue; reports echo it).
    pub id: u64,
    /// The GNN to run.
    pub model: GnnModel,
    /// The Table II dataset family to synthesize from.
    pub dataset: Dataset,
    /// Synthesis scale in `(0, 1]` (1.0 = paper size).
    pub scale: f64,
    /// Synthesis seed — the per-request "payload": requests of one batch
    /// usually differ only here.
    pub seed: u64,
}

impl InferenceRequest {
    /// A request at the given scale and seed.
    pub fn new(id: u64, model: GnnModel, dataset: Dataset, scale: f64, seed: u64) -> Self {
        InferenceRequest { id, model, dataset, scale, seed }
    }

    /// The weight-compatibility key: equal keys guarantee equal
    /// [`ModelConfig`]s, hence shareable resident weights.
    pub fn model_key(&self) -> ModelKey {
        ModelKey { model: self.model, dataset: self.dataset, scale_bits: self.scale.to_bits() }
    }

    /// The Table III model configuration this request runs.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig::paper(self.model, &self.dataset.spec().scaled(self.scale))
    }

    /// Synthesizes the request's graph + features.
    pub fn synthesize(&self) -> SyntheticDataset {
        SyntheticDataset::generate(self.dataset, self.scale, self.seed)
    }
}

/// Groups requests whose weights are interchangeable: the Table III
/// stack's dimensions are a function of `(model, dataset, scale)` only
/// (DiffPool's cluster count depends on the scaled vertex count, hence
/// `scale` participates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelKey {
    /// The GNN model.
    pub model: GnnModel,
    /// The dataset family (fixes feature/label widths).
    pub dataset: Dataset,
    /// Bit pattern of the synthesis scale (fixes DiffPool's cluster count).
    pub scale_bits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_mean_equal_model_configs() {
        let a = InferenceRequest::new(0, GnnModel::DiffPool, Dataset::Cora, 0.25, 7);
        let b = InferenceRequest::new(1, GnnModel::DiffPool, Dataset::Cora, 0.25, 99);
        assert_eq!(a.model_key(), b.model_key());
        assert_eq!(a.model_config(), b.model_config());
    }

    #[test]
    fn scale_participates_in_the_key() {
        // DiffPool's cluster count tracks the scaled vertex count, so
        // different scales must not share weights.
        let a = InferenceRequest::new(0, GnnModel::DiffPool, Dataset::Cora, 0.05, 7);
        let b = InferenceRequest::new(1, GnnModel::DiffPool, Dataset::Cora, 0.10, 7);
        assert_ne!(a.model_key(), b.model_key());
        assert_ne!(a.model_config(), b.model_config());
    }

    #[test]
    fn model_and_dataset_participate_in_the_key() {
        let base = InferenceRequest::new(0, GnnModel::Gcn, Dataset::Cora, 0.2, 7);
        let other_model = InferenceRequest { model: GnnModel::Gat, ..base };
        let other_dataset = InferenceRequest { dataset: Dataset::Citeseer, ..base };
        assert_ne!(base.model_key(), other_model.model_key());
        assert_ne!(base.model_key(), other_dataset.model_key());
    }
}
