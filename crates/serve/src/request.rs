//! Inference requests, their weight-compatibility grouping key, and the
//! SLA annotations online requests carry.

use serde::{Deserialize, Serialize};

use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_graph::{Dataset, SyntheticDataset};

use crate::clock::Cycle;

/// One queued inference question: run `model` over an instance of
/// `dataset` synthesized at `scale` from `seed`.
///
/// Requests with equal [`model_key`](InferenceRequest::model_key)s
/// instantiate byte-identical [`ModelConfig`]s (the Table III stack's
/// dimensions depend only on model, dataset, and scale), so their layer
/// weights are interchangeable — the batch scheduler groups them so the
/// weights stream from DRAM once per batch instead of once per request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Caller-chosen identity (unique per queue; reports echo it).
    pub id: u64,
    /// The GNN to run.
    pub model: GnnModel,
    /// The Table II dataset family to synthesize from.
    pub dataset: Dataset,
    /// Synthesis scale in `(0, 1]` (1.0 = paper size).
    pub scale: f64,
    /// Synthesis seed — the per-request "payload": requests of one batch
    /// usually differ only here.
    pub seed: u64,
}

impl InferenceRequest {
    /// A request at the given scale and seed.
    pub fn new(id: u64, model: GnnModel, dataset: Dataset, scale: f64, seed: u64) -> Self {
        InferenceRequest { id, model, dataset, scale, seed }
    }

    /// The weight-compatibility key: equal keys guarantee equal
    /// [`ModelConfig`]s, hence shareable resident weights.
    pub fn model_key(&self) -> ModelKey {
        ModelKey { model: self.model, dataset: self.dataset, scale_bits: self.scale.to_bits() }
    }

    /// The Table III model configuration this request runs.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig::paper(self.model, &self.dataset.spec().scaled(self.scale))
    }

    /// Synthesizes the request's graph + features.
    pub fn synthesize(&self) -> SyntheticDataset {
        SyntheticDataset::generate(self.dataset, self.scale, self.seed)
    }
}

/// Groups requests whose weights are interchangeable: the Table III
/// stack's dimensions are a function of `(model, dataset, scale)` only
/// (DiffPool's cluster count depends on the scaled vertex count, hence
/// `scale` participates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelKey {
    /// The GNN model.
    pub model: GnnModel,
    /// The dataset family (fixes feature/label widths).
    pub dataset: Dataset,
    /// Bit pattern of the synthesis scale (fixes DiffPool's cluster count).
    pub scale_bits: u64,
}

/// The latency contract a request arrives under.
///
/// A class maps to a *slack factor*: the request's deadline is its
/// arrival cycle plus `slack_factor × its own isolated service time`
/// (the resident-weights cost the admission controller predicts for it).
/// `Batch` has no deadline — it absorbs whatever capacity is left.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlaClass {
    /// Tight deadline: 4× the request's own service time.
    Interactive,
    /// Relaxed deadline: 16× the request's own service time.
    Standard,
    /// No deadline; never rejected by admission control.
    Batch,
}

impl SlaClass {
    /// All classes, tightest first.
    pub const ALL: [SlaClass; 3] = [SlaClass::Interactive, SlaClass::Standard, SlaClass::Batch];

    /// Deadline slack as a multiple of the request's isolated service
    /// time; `None` means no deadline.
    pub fn slack_factor(self) -> Option<u64> {
        match self {
            SlaClass::Interactive => Some(4),
            SlaClass::Standard => Some(16),
            SlaClass::Batch => None,
        }
    }

    /// Short CLI/report token.
    pub fn name(self) -> &'static str {
        match self {
            SlaClass::Interactive => "interactive",
            SlaClass::Standard => "standard",
            SlaClass::Batch => "batch",
        }
    }
}

impl std::fmt::Display for SlaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SlaClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "interactive" => Ok(SlaClass::Interactive),
            "standard" => Ok(SlaClass::Standard),
            "batch" => Ok(SlaClass::Batch),
            other => {
                Err(format!("unknown SLA class `{other}` (use interactive|standard|batch)"))
            }
        }
    }
}

/// How much quality the caller insists on when the server is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityTier {
    /// Full-quality answer or an admission rejection.
    Full,
    /// Degradable: instead of being rejected at admission, the request is
    /// demoted to best-effort ([`SlaClass::Batch`] semantics) and kept.
    Economy,
}

impl QualityTier {
    /// Short report token.
    pub fn name(self) -> &'static str {
        match self {
            QualityTier::Full => "full",
            QualityTier::Economy => "economy",
        }
    }
}

impl std::fmt::Display for QualityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A request stamped with its arrival cycle and SLA contract — the unit
/// the online scheduler works in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineRequest {
    /// The underlying inference question.
    pub request: InferenceRequest,
    /// Simulated arrival cycle.
    pub arrival: Cycle,
    /// Latency contract.
    pub sla: SlaClass,
    /// Degradation policy under overload.
    pub tier: QualityTier,
}

impl OnlineRequest {
    /// Stamps `request` with an arrival time and contract.
    pub fn new(
        request: InferenceRequest,
        arrival: Cycle,
        sla: SlaClass,
        tier: QualityTier,
    ) -> Self {
        OnlineRequest { request, arrival, sla, tier }
    }

    /// The request id (unique per trace).
    pub fn id(&self) -> u64 {
        self.request.id
    }

    /// The weight-compatibility key.
    pub fn model_key(&self) -> ModelKey {
        self.request.model_key()
    }

    /// Absolute deadline cycle given the request's isolated resident
    /// service time, or `None` for deadline-free classes.
    pub fn deadline(&self, service_cycles: Cycle) -> Option<Cycle> {
        self.sla
            .slack_factor()
            .map(|slack| self.arrival.saturating_add(slack.saturating_mul(service_cycles)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_mean_equal_model_configs() {
        let a = InferenceRequest::new(0, GnnModel::DiffPool, Dataset::Cora, 0.25, 7);
        let b = InferenceRequest::new(1, GnnModel::DiffPool, Dataset::Cora, 0.25, 99);
        assert_eq!(a.model_key(), b.model_key());
        assert_eq!(a.model_config(), b.model_config());
    }

    #[test]
    fn scale_participates_in_the_key() {
        // DiffPool's cluster count tracks the scaled vertex count, so
        // different scales must not share weights.
        let a = InferenceRequest::new(0, GnnModel::DiffPool, Dataset::Cora, 0.05, 7);
        let b = InferenceRequest::new(1, GnnModel::DiffPool, Dataset::Cora, 0.10, 7);
        assert_ne!(a.model_key(), b.model_key());
        assert_ne!(a.model_config(), b.model_config());
    }

    #[test]
    fn model_and_dataset_participate_in_the_key() {
        let base = InferenceRequest::new(0, GnnModel::Gcn, Dataset::Cora, 0.2, 7);
        let other_model = InferenceRequest { model: GnnModel::Gat, ..base };
        let other_dataset = InferenceRequest { dataset: Dataset::Citeseer, ..base };
        assert_ne!(base.model_key(), other_model.model_key());
        assert_ne!(base.model_key(), other_dataset.model_key());
    }

    #[test]
    fn sla_tokens_round_trip() {
        for sla in SlaClass::ALL {
            assert_eq!(sla.name().parse::<SlaClass>().unwrap(), sla);
        }
        assert!("gold".parse::<SlaClass>().is_err());
    }

    #[test]
    fn deadlines_scale_with_the_slack_factor() {
        let base = InferenceRequest::new(0, GnnModel::Gcn, Dataset::Cora, 0.1, 7);
        let service = 1_000u64;
        let interactive =
            OnlineRequest::new(base, 500, SlaClass::Interactive, QualityTier::Full);
        assert_eq!(interactive.deadline(service), Some(500 + 4 * service));
        let standard = OnlineRequest::new(base, 500, SlaClass::Standard, QualityTier::Full);
        assert_eq!(standard.deadline(service), Some(500 + 16 * service));
        let batch = OnlineRequest::new(base, 500, SlaClass::Batch, QualityTier::Full);
        assert_eq!(batch.deadline(service), None);
    }
}
