//! The simulated serving clock: cycle ↔ second conversion for online
//! arrival schedules.
//!
//! Online serving timestamps everything — arrivals, dispatches,
//! deadlines, completions — in **accelerator cycles**, the same unit the
//! engine's reports use, so the whole serving schedule stays exact
//! integer arithmetic (bit-identical replays need no float timeline).
//! [`SimClock`] converts at the edges only: load generators draw
//! inter-arrival gaps in seconds and round once into cycles; reports
//! convert completed latencies back for humans.

use serde::{Deserialize, Serialize};

use gnnie_core::config::AcceleratorConfig;
use gnnie_graph::Dataset;

/// A point (or span) on the simulated timeline, in accelerator cycles.
pub type Cycle = u64;

/// Converts between simulated cycles and seconds at a fixed clock rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    /// Accelerator clock in Hz.
    pub clock_hz: f64,
}

impl SimClock {
    /// A clock at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics unless `clock_hz` is finite and positive.
    pub fn new(clock_hz: f64) -> Self {
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock rate must be finite and positive, got {clock_hz}"
        );
        SimClock { clock_hz }
    }

    /// The paper configuration's clock for `dataset`.
    pub fn paper(dataset: Dataset) -> Self {
        SimClock::new(AcceleratorConfig::paper(dataset).clock_hz)
    }

    /// Seconds spanned by `cycles`.
    pub fn to_seconds(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Nearest whole cycle to `seconds` (which must be nonnegative and
    /// finite).
    ///
    /// # Panics
    ///
    /// Panics on a negative, NaN, or infinite input.
    pub fn to_cycles(&self, seconds: f64) -> Cycle {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "timestamps are nonnegative seconds, got {seconds}"
        );
        (seconds * self.clock_hz).round() as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips_whole_cycles() {
        let clock = SimClock::new(1.3e9);
        for cycles in [0u64, 1, 7, 1_000_000, 123_456_789] {
            assert_eq!(clock.to_cycles(clock.to_seconds(cycles)), cycles);
        }
    }

    #[test]
    fn paper_clock_matches_the_accelerator_config() {
        let clock = SimClock::paper(Dataset::Cora);
        assert_eq!(clock.clock_hz, AcceleratorConfig::paper(Dataset::Cora).clock_hz);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_seconds_are_rejected() {
        SimClock::new(1e9).to_cycles(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_is_rejected() {
        SimClock::new(0.0);
    }
}
