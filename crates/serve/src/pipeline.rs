//! The two-resource phase pipeline: simulated-cycle accounting of
//! Weighting/Aggregation overlap across consecutive batches.
//!
//! GNNIE's engine has two schedulable resources: the CPE array running
//! Weighting passes and the aggregation datapath (cache walk + edge
//! updates). One request alternates them (`W₀ A₀ W₁ A₁ …`), leaving each
//! resource idle half the time; with several batches queued, batch *i+1*
//! can occupy the Weighting resource while batch *i* aggregates. This
//! module computes the makespan of that schedule by list scheduling:
//! each resource serves its task queue in batch order, and a batch's
//! layer-*l* Weighting additionally waits for the same batch's layer-*l−1*
//! Aggregation (the layer's input embeddings).
//!
//! Preprocessing is controller work that must precede the batch's first
//! Weighting pass, so it extends the first Weighting task; writeback (and
//! DiffPool coarsening) trail the last Aggregation task.

use serde::{Deserialize, Serialize};

/// One layer's phase-cycle pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePair {
    /// Cycles on the Weighting resource.
    pub weighting: u64,
    /// Cycles on the Aggregation resource.
    pub aggregation: u64,
}

/// A batch's cycle footprint on the two engine resources.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// Preprocessing cycles, serialized before the batch's first
    /// Weighting task.
    pub pre_cycles: u64,
    /// Per-layer phase pairs (the batch's requests back to back).
    pub layers: Vec<PhasePair>,
    /// Coarsening + writeback cycles, serialized after the batch's last
    /// Aggregation task.
    pub post_cycles: u64,
}

impl BatchProfile {
    /// The batch's cycles with no cross-batch overlap (the serial cost).
    pub fn serial_cycles(&self) -> u64 {
        self.pre_cycles
            + self.layers.iter().map(|l| l.weighting + l.aggregation).sum::<u64>()
            + self.post_cycles
    }

    /// Folds another request's footprint into this batch: pre/post add up
    /// and layer phases add element-wise (a batch runs its requests back
    /// to back on each resource). Mismatched layer counts pad with zero
    /// phases, though batches of one [`ModelKey`](crate::ModelKey) never
    /// hit that.
    pub fn merge(&mut self, other: &BatchProfile) {
        self.pre_cycles += other.pre_cycles;
        self.post_cycles += other.post_cycles;
        if self.layers.len() < other.layers.len() {
            self.layers.resize(other.layers.len(), PhasePair::default());
        }
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            mine.weighting += theirs.weighting;
            mine.aggregation += theirs.aggregation;
        }
    }
}

/// Incremental two-resource list scheduler: the online server feeds it
/// batches one dispatch at a time (each released no earlier than its
/// dispatch cycle), the offline [`pipeline`] feeds the whole plan with
/// release 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineState {
    /// Next free cycle on the Weighting resource.
    pub w_free: u64,
    /// Next free cycle on the Aggregation resource.
    pub a_free: u64,
}

impl PipelineState {
    /// A pipeline with both resources free at cycle 0.
    pub fn new() -> Self {
        PipelineState::default()
    }

    /// Schedules one batch whose first task may not start before
    /// `release`; returns the batch's completion cycle.
    pub fn push(&mut self, profile: &BatchProfile, release: u64) -> u64 {
        if profile.layers.is_empty() {
            // No phases: the pre/post work still serializes on the
            // controller; charge it across both resources.
            let done = self.w_free.max(self.a_free).max(release)
                + profile.pre_cycles
                + profile.post_cycles;
            self.w_free = done;
            self.a_free = done;
            return done;
        }
        // `dep`: when this batch's previous phase finished (intra-batch
        // dependency chain W₀ → A₀ → W₁ → …), seeded with the release.
        let mut dep = release;
        let mut done = release;
        let last = profile.layers.len() - 1;
        for (l, phases) in profile.layers.iter().enumerate() {
            let w_len =
                if l == 0 { profile.pre_cycles + phases.weighting } else { phases.weighting };
            let w_done = self.w_free.max(dep) + w_len;
            self.w_free = w_done;
            let a_len = if l == last {
                phases.aggregation + profile.post_cycles
            } else {
                phases.aggregation
            };
            let a_done = self.a_free.max(w_done) + a_len;
            self.a_free = a_done;
            dep = a_done;
            done = a_done;
        }
        done
    }
}

/// The pipelined schedule of a batch sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Makespan: the cycle at which the last batch completes.
    pub total_cycles: u64,
    /// Completion cycle of each batch (nondecreasing).
    pub batch_completion: Vec<u64>,
    /// The same batches run back to back with no overlap.
    pub serial_cycles: u64,
}

impl PipelineSchedule {
    /// Cycles the phase overlap removed versus back-to-back batches.
    pub fn overlap_cycles_saved(&self) -> u64 {
        self.serial_cycles.saturating_sub(self.total_cycles)
    }
}

/// List-schedules `batches` over the two engine resources and returns the
/// makespan. The schedule can never lose to the serial order: every task
/// starts no later than it would back to back, so
/// `total_cycles ≤ serial_cycles` holds for any input (the proptest
/// suite sweeps this).
pub fn pipeline(batches: &[BatchProfile]) -> PipelineSchedule {
    let mut state = PipelineState::new();
    let mut batch_completion = Vec::with_capacity(batches.len());
    for profile in batches {
        batch_completion.push(state.push(profile, 0));
    }
    PipelineSchedule {
        total_cycles: batch_completion.last().copied().unwrap_or(0),
        batch_completion,
        serial_cycles: batches.iter().map(BatchProfile::serial_cycles).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pre: u64, layers: &[(u64, u64)], post: u64) -> BatchProfile {
        BatchProfile {
            pre_cycles: pre,
            layers: layers
                .iter()
                .map(|&(w, a)| PhasePair { weighting: w, aggregation: a })
                .collect(),
            post_cycles: post,
        }
    }

    #[test]
    fn single_batch_runs_serial() {
        let p = profile(5, &[(10, 20), (30, 40)], 7);
        let s = pipeline(std::slice::from_ref(&p));
        assert_eq!(s.total_cycles, p.serial_cycles());
        assert_eq!(s.total_cycles, 5 + 10 + 20 + 30 + 40 + 7);
        assert_eq!(s.overlap_cycles_saved(), 0);
    }

    #[test]
    fn second_batch_weights_under_first_batch_aggregation() {
        // Two identical one-layer batches: batch 1's Weighting (10) hides
        // entirely under batch 0's Aggregation (20).
        let p = profile(0, &[(10, 20)], 0);
        let s = pipeline(&[p.clone(), p]);
        // W0 [0,10) A0 [10,30); W1 [10,20) A1 [30,50).
        assert_eq!(s.batch_completion, vec![30, 50]);
        assert_eq!(s.total_cycles, 50);
        assert_eq!(s.serial_cycles, 60);
        assert_eq!(s.overlap_cycles_saved(), 10);
    }

    #[test]
    fn completion_times_are_nondecreasing() {
        let batches = vec![
            profile(3, &[(10, 2), (4, 6)], 1),
            profile(0, &[(1, 1)], 0),
            profile(9, &[(2, 30), (40, 5)], 2),
        ];
        let s = pipeline(&batches);
        assert!(s.batch_completion.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.total_cycles, *s.batch_completion.last().unwrap());
        assert!(s.total_cycles <= s.serial_cycles);
    }

    #[test]
    fn empty_input_is_zero() {
        let s = pipeline(&[]);
        assert_eq!(s.total_cycles, 0);
        assert_eq!(s.serial_cycles, 0);
        assert!(s.batch_completion.is_empty());
    }

    #[test]
    fn zero_layer_batch_still_charges_pre_and_post() {
        let s = pipeline(&[profile(5, &[], 7), profile(0, &[(10, 10)], 0)]);
        assert_eq!(s.batch_completion, vec![12, 32]);
    }

    #[test]
    fn a_release_delays_the_first_weighting_pass() {
        // Same two-batch shape as the overlap test, but batch 1 is not
        // released until cycle 25: its Weighting can no longer hide fully
        // under batch 0's Aggregation ([10,30)).
        let p = profile(0, &[(10, 20)], 0);
        let mut state = PipelineState::new();
        assert_eq!(state.push(&p, 0), 30);
        // W1 [25,35) (release-bound), A1 [35,55).
        assert_eq!(state.push(&p, 25), 55);
    }

    #[test]
    fn an_idle_gap_lets_a_late_batch_run_in_isolation() {
        let p = profile(5, &[(10, 20)], 7);
        let mut state = PipelineState::new();
        let first = state.push(&p, 0);
        let second = state.push(&p, 1_000);
        assert_eq!(second, 1_000 + p.serial_cycles());
        assert!(first < 1_000);
    }

    #[test]
    fn merge_sums_phases_elementwise() {
        let mut a = profile(5, &[(10, 20), (30, 40)], 7);
        let b = profile(1, &[(2, 3), (4, 5)], 6);
        let serial_sum = a.serial_cycles() + b.serial_cycles();
        a.merge(&b);
        assert_eq!(a, profile(6, &[(12, 23), (34, 45)], 13));
        assert_eq!(a.serial_cycles(), serial_sum);
    }

    #[test]
    fn merge_pads_shorter_layer_stacks() {
        let mut a = profile(0, &[(1, 1)], 0);
        a.merge(&profile(0, &[(2, 2), (3, 3)], 0));
        assert_eq!(a, profile(0, &[(3, 3), (3, 3)], 0));
    }
}
