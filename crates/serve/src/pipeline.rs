//! The two-resource phase pipeline: simulated-cycle accounting of
//! Weighting/Aggregation overlap across consecutive batches.
//!
//! GNNIE's engine has two schedulable resources: the CPE array running
//! Weighting passes and the aggregation datapath (cache walk + edge
//! updates). One request alternates them (`W₀ A₀ W₁ A₁ …`), leaving each
//! resource idle half the time; with several batches queued, batch *i+1*
//! can occupy the Weighting resource while batch *i* aggregates. This
//! module computes the makespan of that schedule by list scheduling:
//! each resource serves its task queue in batch order, and a batch's
//! layer-*l* Weighting additionally waits for the same batch's layer-*l−1*
//! Aggregation (the layer's input embeddings).
//!
//! Preprocessing is controller work that must precede the batch's first
//! Weighting pass, so it extends the first Weighting task; writeback (and
//! DiffPool coarsening) trail the last Aggregation task.

use serde::{Deserialize, Serialize};

/// One layer's phase-cycle pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePair {
    /// Cycles on the Weighting resource.
    pub weighting: u64,
    /// Cycles on the Aggregation resource.
    pub aggregation: u64,
}

/// A batch's cycle footprint on the two engine resources.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// Preprocessing cycles, serialized before the batch's first
    /// Weighting task.
    pub pre_cycles: u64,
    /// Per-layer phase pairs (the batch's requests back to back).
    pub layers: Vec<PhasePair>,
    /// Coarsening + writeback cycles, serialized after the batch's last
    /// Aggregation task.
    pub post_cycles: u64,
}

impl BatchProfile {
    /// The batch's cycles with no cross-batch overlap (the serial cost).
    pub fn serial_cycles(&self) -> u64 {
        self.pre_cycles
            + self.layers.iter().map(|l| l.weighting + l.aggregation).sum::<u64>()
            + self.post_cycles
    }
}

/// The pipelined schedule of a batch sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Makespan: the cycle at which the last batch completes.
    pub total_cycles: u64,
    /// Completion cycle of each batch (nondecreasing).
    pub batch_completion: Vec<u64>,
    /// The same batches run back to back with no overlap.
    pub serial_cycles: u64,
}

impl PipelineSchedule {
    /// Cycles the phase overlap removed versus back-to-back batches.
    pub fn overlap_cycles_saved(&self) -> u64 {
        self.serial_cycles.saturating_sub(self.total_cycles)
    }
}

/// List-schedules `batches` over the two engine resources and returns the
/// makespan. The schedule can never lose to the serial order: every task
/// starts no later than it would back to back, so
/// `total_cycles ≤ serial_cycles` holds for any input (the proptest
/// suite sweeps this).
pub fn pipeline(batches: &[BatchProfile]) -> PipelineSchedule {
    let mut w_free = 0u64; // Weighting resource: next free cycle.
    let mut a_free = 0u64; // Aggregation resource: next free cycle.
    let mut batch_completion = Vec::with_capacity(batches.len());
    for profile in batches {
        // `dep`: when this batch's previous phase finished (intra-batch
        // dependency chain W₀ → A₀ → W₁ → …).
        let mut dep = 0u64;
        let mut done = w_free.max(a_free); // degenerate zero-layer batch
        let last = profile.layers.len().saturating_sub(1);
        for (l, phases) in profile.layers.iter().enumerate() {
            let w_len =
                if l == 0 { profile.pre_cycles + phases.weighting } else { phases.weighting };
            let w_done = w_free.max(dep) + w_len;
            w_free = w_done;
            let a_len = if l == last {
                phases.aggregation + profile.post_cycles
            } else {
                phases.aggregation
            };
            let a_done = a_free.max(w_done) + a_len;
            a_free = a_done;
            dep = a_done;
            done = a_done;
        }
        if profile.layers.is_empty() {
            // No phases: the pre/post work still serializes on the
            // controller; charge it across both resources.
            done = w_free.max(a_free) + profile.pre_cycles + profile.post_cycles;
            w_free = done;
            a_free = done;
        }
        batch_completion.push(done);
    }
    PipelineSchedule {
        total_cycles: batch_completion.last().copied().unwrap_or(0),
        batch_completion,
        serial_cycles: batches.iter().map(BatchProfile::serial_cycles).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pre: u64, layers: &[(u64, u64)], post: u64) -> BatchProfile {
        BatchProfile {
            pre_cycles: pre,
            layers: layers
                .iter()
                .map(|&(w, a)| PhasePair { weighting: w, aggregation: a })
                .collect(),
            post_cycles: post,
        }
    }

    #[test]
    fn single_batch_runs_serial() {
        let p = profile(5, &[(10, 20), (30, 40)], 7);
        let s = pipeline(std::slice::from_ref(&p));
        assert_eq!(s.total_cycles, p.serial_cycles());
        assert_eq!(s.total_cycles, 5 + 10 + 20 + 30 + 40 + 7);
        assert_eq!(s.overlap_cycles_saved(), 0);
    }

    #[test]
    fn second_batch_weights_under_first_batch_aggregation() {
        // Two identical one-layer batches: batch 1's Weighting (10) hides
        // entirely under batch 0's Aggregation (20).
        let p = profile(0, &[(10, 20)], 0);
        let s = pipeline(&[p.clone(), p]);
        // W0 [0,10) A0 [10,30); W1 [10,20) A1 [30,50).
        assert_eq!(s.batch_completion, vec![30, 50]);
        assert_eq!(s.total_cycles, 50);
        assert_eq!(s.serial_cycles, 60);
        assert_eq!(s.overlap_cycles_saved(), 10);
    }

    #[test]
    fn completion_times_are_nondecreasing() {
        let batches = vec![
            profile(3, &[(10, 2), (4, 6)], 1),
            profile(0, &[(1, 1)], 0),
            profile(9, &[(2, 30), (40, 5)], 2),
        ];
        let s = pipeline(&batches);
        assert!(s.batch_completion.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.total_cycles, *s.batch_completion.last().unwrap());
        assert!(s.total_cycles <= s.serial_cycles);
    }

    #[test]
    fn empty_input_is_zero() {
        let s = pipeline(&[]);
        assert_eq!(s.total_cycles, 0);
        assert_eq!(s.serial_cycles, 0);
        assert!(s.batch_completion.is_empty());
    }

    #[test]
    fn zero_layer_batch_still_charges_pre_and_post() {
        let s = pipeline(&[profile(5, &[], 7), profile(0, &[(10, 10)], 0)]);
        assert_eq!(s.batch_completion, vec![12, 32]);
    }
}
