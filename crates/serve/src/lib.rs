//! Batched, pipelined inference serving on top of the GNNIE engine.
//!
//! The simulator's [`Engine`](gnnie_core::engine::Engine) answers one
//! `(model, dataset)` question per call; a serving deployment instead
//! sees a queue of concurrent requests. This crate adds the layer that
//! turns the one-shot simulator into a serving engine, following the
//! throughput playbook of GNN inference-serving systems (DGI's
//! layer-wise batching, arXiv:2211.15082; DCI's workload-aware
//! cross-job allocation, arXiv:2503.01281):
//!
//! * **[`request`]** — [`InferenceRequest`] and the [`ModelKey`]
//!   weight-compatibility group (equal keys ⇒ identical Table III
//!   stacks ⇒ shareable weights);
//! * **[`scheduler`]** — [`BatchScheduler`] groups compatible requests
//!   into model-homogeneous batches (FIFO vs model-affinity policies),
//!   so layer weights stream from DRAM once per batch: the leader pays,
//!   followers run with
//!   [`weights_resident`](gnnie_core::engine::RunOptions::weights_resident);
//! * **[`pipeline`](mod@pipeline)** — two-resource list scheduling of the batches'
//!   Weighting/Aggregation phases: while batch *i* aggregates, batch
//!   *i+1* weights, and the makespan never loses to back-to-back
//!   execution;
//! * **[`server`]** — [`Server`] drives it end to end on a
//!   `std::thread::scope` worker pool and reports throughput,
//!   p50/p95/p99 simulated latency, and the weight-load cycles batching
//!   saved versus a serial `Engine::run` loop.
//!
//! On top of the static path sits **online serving** — the queue is no
//! longer known at t = 0:
//!
//! * **[`clock`](mod@clock)** — [`SimClock`]: everything is timestamped in
//!   accelerator [`Cycle`]s; seconds only at the edges;
//! * **[`loadgen`]** — [`LoadGen`] stamps a queue into an arrival trace
//!   (static / Poisson / bursty, deterministic via the seeded shim RNG)
//!   with an [`SlaClass`] + [`QualityTier`] mix;
//! * **[`online`]** — [`schedule_online`] replays the trace through a
//!   continuous-batching scheduler: SLA-aware admission control,
//!   deadline-urgency batch fill, fill-vs-slack waiting, and weight
//!   residency carried across consecutive same-model batches — all
//!   exact integer cycle arithmetic over pre-simulated request costs,
//!   so replays are bit-identical at any thread count;
//! * **[`daemon`]** — [`Daemon`]: a long-lived channel-fed worker pool
//!   sharing one persistent
//!   [`SimPool`](gnnie_core::SimPool) across requests (the
//!   `gnnie serve --daemon` backend), with graceful drain on shutdown.
//!
//! # Example
//!
//! ```
//! use gnnie_serve::{InferenceRequest, SchedulerPolicy, ServeConfig, Server};
//! use gnnie_serve::{GnnModel, Dataset};
//!
//! // Four GCN queries over small Cora-like graphs (distinct seeds).
//! let queue: Vec<_> = (0..4)
//!     .map(|i| InferenceRequest::new(i, GnnModel::Gcn, Dataset::Cora, 0.05, 40 + i))
//!     .collect();
//! let server = Server::new(ServeConfig {
//!     policy: SchedulerPolicy::ModelAffinity,
//!     max_batch: 4,
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let report = server.run(&queue);
//! // One model-homogeneous batch: three followers reuse the leader's
//! // resident weights, and the batched schedule never loses to the
//! // serial Engine::run loop.
//! assert_eq!(report.batches.len(), 1);
//! assert!(report.weight_load_cycles_saved > 0);
//! assert!(report.pipelined_total_cycles < report.serial_total_cycles);
//! println!(
//!     "{} req: {:.0} inf/s, p95 {:.1} us, saved {} weight-load cycles",
//!     report.requests.len(),
//!     report.throughput_inferences_per_s(),
//!     report.p95_latency_s() * 1e6,
//!     report.weight_load_cycles_saved,
//! );
//! ```

pub mod clock;
pub mod daemon;
pub mod loadgen;
pub mod online;
pub mod pipeline;
pub mod request;
pub mod scheduler;
pub mod server;

pub use clock::{Cycle, SimClock};
pub use daemon::{Daemon, DaemonConfig, ProfileCacheStats};
pub use loadgen::{ArrivalProcess, LoadGen, SlaMix};
pub use online::{
    schedule_online, schedule_online_observed, OnlineBatchReport, OnlineConfig, OnlineOutcome,
    OnlineReport, RejectedRequest, RequestCost,
};
pub use pipeline::{pipeline, BatchProfile, PhasePair, PipelineSchedule, PipelineState};
pub use request::{InferenceRequest, ModelKey, OnlineRequest, QualityTier, SlaClass};
pub use scheduler::{Batch, BatchPlan, BatchScheduler, SchedulerPolicy};
pub use server::{
    percentile_nearest_rank, report_profile, BatchReport, RequestOutcome, ServeConfig,
    ServeReport, Server,
};

// Re-exported so downstream callers (CLI, bench) can build requests
// without a direct gnn/graph dependency.
pub use gnnie_gnn::model::GnnModel;
pub use gnnie_graph::Dataset;
