//! The long-lived serving daemon: a channel-fed worker pool that keeps
//! one persistent [`SimPool`] alive across requests.
//!
//! [`Server`](crate::Server) spawns a fresh scoped pool (and each
//! `RunSession` its own shard threads) per call — fine for one-shot
//! evaluation, waste for a service that answers requests all day. The
//! [`Daemon`] instead spawns its request workers once; each worker
//! drives sessions through
//! [`Engine::begin_pooled`](gnnie_core::engine::Engine::begin_pooled)
//! against one shared persistent [`SimPool`], so the shard threads are
//! spawned once per daemon, not once per request. Simulated cycle
//! counts are unaffected (the pool is host-side parallelism only):
//! [`Daemon::serve_online`] returns bit-identical reports to
//! [`Server::run_online`](crate::Server::run_online), which the online
//! test suite asserts.
//!
//! Shutdown is a graceful drain: dropping the job sender lets every
//! worker finish its current request and exit; [`Daemon::shutdown`]
//! (and `Drop`) then joins them.

use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::engine::{Engine, RunOptions};
use gnnie_core::report::InferenceReport;
use gnnie_core::{SimPool, SimThreads};

use crate::clock::SimClock;
use crate::online::{schedule_online, OnlineConfig, OnlineReport, RequestCost};
use crate::request::{InferenceRequest, OnlineRequest};

/// Daemon parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Long-lived request workers (≥ 1). Host-side parallelism only.
    pub workers: usize,
    /// Width of the shared persistent simulation pool, resolved once at
    /// spawn. Defaults from `GNNIE_SIM_THREADS`.
    pub sim_threads: SimThreads,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        DaemonConfig { workers, sim_threads: SimThreads::from_env() }
    }
}

/// One simulation job: a request run cold or resident, with a slot to
/// file the report under.
struct ProfileJob {
    request: InferenceRequest,
    resident: bool,
    slot: usize,
    reply: mpsc::Sender<(usize, InferenceReport)>,
}

/// The persistent serving daemon. See the module docs.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    sender: Option<mpsc::Sender<ProfileJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Spawns the request workers and the shared simulation pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is 0.
    pub fn new(config: DaemonConfig) -> Self {
        assert!(config.workers >= 1, "the daemon needs at least one request worker");
        let pool = SimPool::persistent(config.sim_threads);
        let (sender, receiver) = mpsc::channel::<ProfileJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..config.workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let pool = pool.clone();
                std::thread::spawn(move || loop {
                    // Take the next job outside the lock so workers run
                    // requests concurrently; a closed channel is the
                    // drain signal.
                    let job = match receiver.lock().expect("daemon queue poisoned").recv() {
                        Ok(job) => job,
                        Err(mpsc::RecvError) => break,
                    };
                    let ds = job.request.synthesize();
                    let model = job.request.model_config();
                    let engine = Engine::new(AcceleratorConfig::paper(job.request.dataset));
                    let mut session = engine.begin_pooled(
                        &model,
                        &ds,
                        RunOptions { weights_resident: job.resident, sim_threads: None },
                        &pool,
                    );
                    session.run_to_completion();
                    // A dropped collector just means the caller gave up
                    // on this batch of jobs; keep draining.
                    let _ = job.reply.send((job.slot, session.finish()));
                })
            })
            .collect();
        Daemon { config, sender: Some(sender), handles }
    }

    /// The daemon's parameters.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Pre-simulates every request cold and resident on the resident
    /// worker pool; returns the cost oracle keyed by request id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate request ids, after [`shutdown`](Self::shutdown),
    /// or if a worker died mid-batch.
    pub fn profile_costs(&self, requests: &[InferenceRequest]) -> HashMap<u64, RequestCost> {
        let sender = self.sender.as_ref().expect("daemon already shut down");
        let (reply, collect) = mpsc::channel();
        for (i, &request) in requests.iter().enumerate() {
            for resident in [false, true] {
                let job = ProfileJob {
                    request,
                    resident,
                    slot: 2 * i + resident as usize,
                    reply: reply.clone(),
                };
                sender.send(job).expect("daemon workers are gone");
            }
        }
        drop(reply);
        let mut reports: Vec<Option<InferenceReport>> = vec![None; 2 * requests.len()];
        for _ in 0..2 * requests.len() {
            let (slot, report) = collect.recv().expect("a daemon worker died mid-batch");
            reports[slot] = Some(report);
        }
        let mut map = HashMap::new();
        for (i, request) in requests.iter().enumerate() {
            let cold = reports[2 * i].take().expect("cold report filed");
            let resident = reports[2 * i + 1].take().expect("resident report filed");
            let prior = map.insert(request.id, RequestCost::from_reports(&cold, &resident));
            assert!(prior.is_none(), "duplicate request id {} in the trace", request.id);
        }
        map
    }

    /// Replays an online arrival trace on the resident workers: profiles
    /// every request's costs, then runs the continuous-batching
    /// scheduler. Bit-identical to
    /// [`Server::run_online`](crate::Server::run_online) on the same
    /// trace and config.
    pub fn serve_online(&self, trace: &[OnlineRequest], cfg: &OnlineConfig) -> OnlineReport {
        let requests: Vec<InferenceRequest> = trace.iter().map(|r| r.request).collect();
        let costs = self.profile_costs(&requests);
        let clock = trace
            .first()
            .map(|r| SimClock::paper(r.request.dataset))
            .unwrap_or_else(|| SimClock::new(1.3e9));
        schedule_online(trace, &costs, cfg, &clock)
    }

    /// Graceful drain: closes the job queue, lets every worker finish
    /// its current request, and joins them.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, GnnModel};

    fn queue(n: u64) -> Vec<InferenceRequest> {
        (0..n)
            .map(|i| InferenceRequest::new(i, GnnModel::Gcn, Dataset::Cora, 0.08, 100 + i))
            .collect()
    }

    #[test]
    fn daemon_costs_match_the_scoped_server() {
        let requests = queue(3);
        let daemon =
            Daemon::new(DaemonConfig { workers: 2, sim_threads: SimThreads::Fixed(2) });
        let from_daemon = daemon.profile_costs(&requests);
        daemon.shutdown();
        let server = crate::Server::new(crate::ServeConfig {
            workers: 1,
            sim_threads: SimThreads::Fixed(1),
            ..crate::ServeConfig::default()
        });
        let from_server = server.profile_costs(&requests);
        assert_eq!(from_daemon, from_server, "resident pool must not change simulated cycles");
    }

    #[test]
    fn workers_survive_many_request_rounds() {
        let daemon =
            Daemon::new(DaemonConfig { workers: 2, sim_threads: SimThreads::Fixed(1) });
        let first = daemon.profile_costs(&queue(2));
        let second = daemon.profile_costs(&queue(2));
        assert_eq!(first, second, "the same queue reprofiled must reproduce exactly");
    }

    #[test]
    fn shutdown_is_a_clean_drain() {
        let daemon =
            Daemon::new(DaemonConfig { workers: 4, sim_threads: SimThreads::Fixed(1) });
        let _ = daemon.profile_costs(&queue(1));
        daemon.shutdown(); // joins without hanging or panicking
    }
}
