//! The long-lived serving daemon: a channel-fed worker pool that keeps
//! one persistent [`SimPool`] alive across requests.
//!
//! [`Server`](crate::Server) spawns a fresh scoped pool (and each
//! `RunSession` its own shard threads) per call — fine for one-shot
//! evaluation, waste for a service that answers requests all day. The
//! [`Daemon`] instead spawns its request workers once; each worker
//! drives sessions through
//! [`Engine::begin_pooled`](gnnie_core::engine::Engine::begin_pooled)
//! against one shared persistent [`SimPool`], so the shard threads are
//! spawned once per daemon, not once per request. Simulated cycle
//! counts are unaffected (the pool is host-side parallelism only):
//! [`Daemon::serve_online`] returns bit-identical reports to
//! [`Server::run_online`](crate::Server::run_online), which the online
//! test suite asserts.
//!
//! Shutdown is a graceful drain: dropping the job sender lets every
//! worker finish its current request and exit; [`Daemon::shutdown`]
//! (and `Drop`) then joins them.

use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::engine::{Engine, RunOptions};
use gnnie_core::report::InferenceReport;
use gnnie_core::{SimPool, SimThreads};

use crate::clock::SimClock;
use crate::online::{OnlineConfig, OnlineReport, RequestCost};
use crate::request::{InferenceRequest, ModelKey, OnlineRequest};

/// Daemon parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Long-lived request workers (≥ 1). Host-side parallelism only.
    pub workers: usize,
    /// Width of the shared persistent simulation pool, resolved once at
    /// spawn. Defaults from `GNNIE_SIM_THREADS`.
    pub sim_threads: SimThreads,
    /// Simulated accelerator count each request runs on (1 = the
    /// single-chip engine). Participates in the profile-cache key.
    pub chips: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        DaemonConfig { workers, sim_threads: SimThreads::from_env(), chips: 1 }
    }
}

/// What a [`RequestCost`] depends on: the model/dataset/scale key, the
/// synthesis seed (requests of one trace usually differ only here — the
/// seed changes the graph, hence the cost), and the chip count. Two
/// requests agreeing on all three are guaranteed the same simulated
/// costs, so the daemon memoizes on this.
type ProfileKey = (ModelKey, u64, usize);

/// Cost-oracle cache statistics (reported in daemon stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileCacheStats {
    /// Requests answered from the memoized oracle.
    pub hits: u64,
    /// Requests that had to be simulated.
    pub misses: u64,
    /// Distinct profiles currently memoized.
    pub entries: usize,
}

/// The memoized cost oracle plus its hit/miss counters (one mutex so the
/// counters can never drift from the map they describe).
#[derive(Debug, Default)]
struct ProfileCache {
    map: HashMap<ProfileKey, RequestCost>,
    hits: u64,
    misses: u64,
}

/// One simulation job: a request run cold or resident, with a slot to
/// file the report under.
struct ProfileJob {
    request: InferenceRequest,
    resident: bool,
    slot: usize,
    reply: mpsc::Sender<(usize, InferenceReport)>,
}

/// The persistent serving daemon. See the module docs.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    sender: Option<mpsc::Sender<ProfileJob>>,
    handles: Vec<JoinHandle<()>>,
    cache: Mutex<ProfileCache>,
}

impl Daemon {
    /// Spawns the request workers and the shared simulation pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is 0.
    pub fn new(config: DaemonConfig) -> Self {
        assert!(config.workers >= 1, "the daemon needs at least one request worker");
        assert!(config.chips >= 1, "the daemon needs at least one simulated chip");
        let pool = SimPool::persistent(config.sim_threads);
        let (sender, receiver) = mpsc::channel::<ProfileJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..config.workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let pool = pool.clone();
                std::thread::spawn(move || loop {
                    // Take the next job outside the lock so workers run
                    // requests concurrently; a closed channel is the
                    // drain signal.
                    let job = match receiver.lock().expect("daemon queue poisoned").recv() {
                        Ok(job) => job,
                        Err(mpsc::RecvError) => break,
                    };
                    let ds = job.request.synthesize();
                    let model = job.request.model_config();
                    let mut accel = AcceleratorConfig::paper(job.request.dataset);
                    accel.chips = config.chips;
                    let engine = Engine::new(accel);
                    let mut session = engine.begin_pooled(
                        &model,
                        &ds,
                        RunOptions { weights_resident: job.resident, ..RunOptions::default() },
                        &pool,
                    );
                    session.run_to_completion();
                    // A dropped collector just means the caller gave up
                    // on this batch of jobs; keep draining.
                    let _ = job.reply.send((job.slot, session.finish()));
                })
            })
            .collect();
        Daemon {
            config,
            sender: Some(sender),
            handles,
            cache: Mutex::new(ProfileCache::default()),
        }
    }

    /// The daemon's parameters.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Pre-simulates every request cold and resident on the resident
    /// worker pool; returns the cost oracle keyed by request id.
    ///
    /// Profiles are **memoized** across calls: a request whose
    /// (model key, seed, chips) triple was simulated before is answered
    /// from the cache without touching the workers (see
    /// [`profile_cache_stats`](Self::profile_cache_stats)).
    ///
    /// # Panics
    ///
    /// Panics on duplicate request ids, after [`shutdown`](Self::shutdown),
    /// or if a worker died mid-batch.
    pub fn profile_costs(&self, requests: &[InferenceRequest]) -> HashMap<u64, RequestCost> {
        let sender = self.sender.as_ref().expect("daemon already shut down");
        let key =
            |r: &InferenceRequest| -> ProfileKey { (r.model_key(), r.seed, self.config.chips) };
        // Decide hits/misses under the lock, then simulate the distinct
        // missing profiles without holding it.
        let to_profile: Vec<InferenceRequest> = {
            let mut cache = self.cache.lock().expect("profile cache poisoned");
            let mut missing: Vec<InferenceRequest> = Vec::new();
            for r in requests {
                if cache.map.contains_key(&key(r)) {
                    cache.hits += 1;
                } else {
                    cache.misses += 1;
                    if !missing.iter().any(|q| key(q) == key(r)) {
                        missing.push(*r);
                    }
                }
            }
            missing
        };
        if !to_profile.is_empty() {
            let (reply, collect) = mpsc::channel();
            for (i, &request) in to_profile.iter().enumerate() {
                for resident in [false, true] {
                    let job = ProfileJob {
                        request,
                        resident,
                        slot: 2 * i + resident as usize,
                        reply: reply.clone(),
                    };
                    sender.send(job).expect("daemon workers are gone");
                }
            }
            drop(reply);
            let mut reports: Vec<Option<InferenceReport>> = vec![None; 2 * to_profile.len()];
            for _ in 0..2 * to_profile.len() {
                let (slot, report) = collect.recv().expect("a daemon worker died mid-batch");
                reports[slot] = Some(report);
            }
            let mut cache = self.cache.lock().expect("profile cache poisoned");
            for (i, request) in to_profile.iter().enumerate() {
                let cold = reports[2 * i].take().expect("cold report filed");
                let resident = reports[2 * i + 1].take().expect("resident report filed");
                cache.map.insert(key(request), RequestCost::from_reports(&cold, &resident));
            }
        }
        let cache = self.cache.lock().expect("profile cache poisoned");
        let mut map = HashMap::new();
        for request in requests {
            let cost = cache.map.get(&key(request)).expect("profiled above").clone();
            let prior = map.insert(request.id, cost);
            assert!(prior.is_none(), "duplicate request id {} in the trace", request.id);
        }
        map
    }

    /// Hit/miss/entry counters of the memoized cost oracle.
    pub fn profile_cache_stats(&self) -> ProfileCacheStats {
        let cache = self.cache.lock().expect("profile cache poisoned");
        ProfileCacheStats { hits: cache.hits, misses: cache.misses, entries: cache.map.len() }
    }

    /// Replays an online arrival trace on the resident workers: profiles
    /// every request's costs, then runs the continuous-batching
    /// scheduler. Bit-identical to
    /// [`Server::run_online`](crate::Server::run_online) on the same
    /// trace and config.
    pub fn serve_online(&self, trace: &[OnlineRequest], cfg: &OnlineConfig) -> OnlineReport {
        self.serve_online_observed(trace, cfg, &gnnie_obs::Obs::off())
    }

    /// [`serve_online`](Self::serve_online) with an observability bundle:
    /// batch lifecycles land on the trace, and the metrics registry gains
    /// the per-SLA-class queue-wait/latency histograms plus the profile
    /// cache's hit/miss counters — the surface the drain report prints
    /// from. A disabled bundle records nothing; the report is identical
    /// either way.
    pub fn serve_online_observed(
        &self,
        trace: &[OnlineRequest],
        cfg: &OnlineConfig,
        obs: &gnnie_obs::Obs,
    ) -> OnlineReport {
        let requests: Vec<InferenceRequest> = trace.iter().map(|r| r.request).collect();
        let costs = self.profile_costs(&requests);
        let clock = trace
            .first()
            .map(|r| SimClock::paper(r.request.dataset))
            .unwrap_or_else(|| SimClock::new(1.3e9));
        let report = crate::online::schedule_online_observed(trace, &costs, cfg, &clock, obs);
        if obs.metrics.enabled() {
            let stats = self.profile_cache_stats();
            // Gauges, not counters: the stats are already lifetime
            // totals, so re-serving must overwrite rather than re-add.
            obs.metrics.gauge_set("serve.daemon.profile_cache.hits", stats.hits as f64);
            obs.metrics.gauge_set("serve.daemon.profile_cache.misses", stats.misses as f64);
            obs.metrics.gauge_set("serve.daemon.profile_cache.entries", stats.entries as f64);
        }
        report
    }

    /// Graceful drain: closes the job queue, lets every worker finish
    /// its current request, and joins them.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, GnnModel};

    fn queue(n: u64) -> Vec<InferenceRequest> {
        (0..n)
            .map(|i| InferenceRequest::new(i, GnnModel::Gcn, Dataset::Cora, 0.08, 100 + i))
            .collect()
    }

    fn config(workers: usize, threads: usize) -> DaemonConfig {
        DaemonConfig { workers, sim_threads: SimThreads::Fixed(threads), chips: 1 }
    }

    #[test]
    fn daemon_costs_match_the_scoped_server() {
        let requests = queue(3);
        let daemon = Daemon::new(config(2, 2));
        let from_daemon = daemon.profile_costs(&requests);
        daemon.shutdown();
        let server = crate::Server::new(crate::ServeConfig {
            workers: 1,
            sim_threads: SimThreads::Fixed(1),
            ..crate::ServeConfig::default()
        });
        let from_server = server.profile_costs(&requests);
        assert_eq!(from_daemon, from_server, "resident pool must not change simulated cycles");
    }

    #[test]
    fn workers_survive_many_request_rounds() {
        let daemon = Daemon::new(config(2, 1));
        let first = daemon.profile_costs(&queue(2));
        let second = daemon.profile_costs(&queue(2));
        assert_eq!(first, second, "the same queue reprofiled must reproduce exactly");
    }

    #[test]
    fn shutdown_is_a_clean_drain() {
        let daemon = Daemon::new(config(4, 1));
        let _ = daemon.profile_costs(&queue(1));
        daemon.shutdown(); // joins without hanging or panicking
    }

    #[test]
    fn second_profile_round_is_all_cache_hits() {
        let daemon = Daemon::new(config(2, 1));
        let first = daemon.profile_costs(&queue(2));
        let stats = daemon.profile_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2), "cold start");
        let second = daemon.profile_costs(&queue(2));
        assert_eq!(first, second, "memoized costs must equal the simulated ones");
        let stats = daemon.profile_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2), "round two is free");
    }

    #[test]
    fn distinct_seeds_never_share_a_cache_entry() {
        // Same model/dataset/scale, different seeds → different graphs,
        // so the seed must participate in the key (the ISSUE's
        // (model, dataset, scale, chips) key would be lossy here).
        let daemon = Daemon::new(config(2, 1));
        let a = InferenceRequest::new(0, GnnModel::Gcn, Dataset::Cora, 0.08, 7);
        let b = InferenceRequest::new(1, GnnModel::Gcn, Dataset::Cora, 0.08, 8);
        let costs = daemon.profile_costs(&[a, b]);
        let stats = daemon.profile_cache_stats();
        assert_eq!(stats.entries, 2, "one entry per seed");
        assert_ne!(costs[&0], costs[&1], "different graphs cost differently");
    }

    #[test]
    fn chips_participate_in_the_key_and_the_simulation() {
        let single = Daemon::new(config(1, 1));
        let multi = Daemon::new(DaemonConfig {
            workers: 1,
            sim_threads: SimThreads::Fixed(1),
            chips: 4,
        });
        let req = queue(1);
        let one = single.profile_costs(&req);
        let four = multi.profile_costs(&req);
        assert_ne!(one[&0], four[&0], "a 4-chip run must not reuse single-chip costs");
    }
}
