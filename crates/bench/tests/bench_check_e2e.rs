//! End-to-end tests for the `bench_check` CI gate binary on synthetic
//! `BENCH_*.json` fixtures: pass, regression with a delta table,
//! missing metrics, and the `--write-baselines` freeze rules for
//! wall-clock metrics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_bench_check");

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gnnie-bench-check-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// Runs `bench_check` with a baseline dir and artifact paths.
fn run_check(baseline_dir: &Path, extra: &[&str], artifacts: &[&PathBuf]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.arg("--baseline-dir").arg(baseline_dir);
    cmd.args(extra);
    for a in artifacts {
        cmd.arg(a);
    }
    cmd.output().expect("spawn bench_check")
}

/// A serving artifact whose worst row has the given speedup/throughput.
fn serving_artifact(dir: &Path, speedup: f64, throughput: f64) -> PathBuf {
    let path = dir.join("BENCH_serving_throughput.json");
    std::fs::write(
        &path,
        format!(
            r#"[{{"speedup_vs_serial": {speedup}, "throughput_inferences_per_s": {throughput}}},
                {{"speedup_vs_serial": {}, "throughput_inferences_per_s": {}}}]"#,
            speedup + 1.0,
            throughput * 2.0,
        ),
    )
    .expect("write artifact");
    path
}

/// A parallel-speedup artifact (mixes a deterministic flag with the
/// wall-clock `max_speedup_vs_serial`).
fn parallel_artifact(dir: &Path, identical: bool, speedup: f64) -> PathBuf {
    let path = dir.join("BENCH_parallel_speedup.json");
    std::fs::write(
        &path,
        format!(
            r#"[{{"identical": true, "threads": 1, "speedup_vs_serial": 1.0}},
                {{"identical": {identical}, "threads": 4, "speedup_vs_serial": {speedup}}}]"#
        ),
    )
    .expect("write artifact");
    path
}

fn write_baseline(dir: &Path, file: &str, metrics: &[(&str, f64)]) {
    let body = metrics
        .iter()
        .map(|(n, v)| format!("    \"{n}\": {v:.4}"))
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(
        dir.join(file),
        format!("{{\n  \"artifact\": \"x\",\n  \"metrics\": {{\n{body}\n  }}\n}}\n"),
    )
    .expect("write baseline");
}

fn read_baseline_metric(dir: &Path, file: &str, name: &str) -> f64 {
    let text = std::fs::read_to_string(dir.join(file)).expect("read baseline back");
    let needle = format!("\"{name}\": ");
    let at = text.find(&needle).unwrap_or_else(|| panic!("`{name}` missing in:\n{text}"));
    text[at + needle.len()..]
        .split([',', '\n', '}'])
        .next()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("unparsable `{name}` in:\n{text}"))
}

#[test]
fn matching_artifact_passes_the_gate() {
    let dir = tmpdir("pass");
    let artifact = serving_artifact(&dir, 1.5, 100.0);
    write_baseline(
        &dir,
        "serving_throughput.json",
        &[("min_speedup_vs_serial", 1.5), ("min_throughput_inferences_per_s", 100.0)],
    );
    let out = run_check(&dir, &[], &[&artifact]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bench gate OK"), "{stdout}");
    assert!(!stdout.contains("REGRESSED"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_drop_beyond_tolerance_fails_with_a_delta_table() {
    let dir = tmpdir("regress");
    // Baseline says 2.0; the artifact's worst row measures 1.5 — a 25%
    // drop, well past the 10% default tolerance.
    let artifact = serving_artifact(&dir, 1.5, 100.0);
    write_baseline(
        &dir,
        "serving_throughput.json",
        &[("min_speedup_vs_serial", 2.0), ("min_throughput_inferences_per_s", 100.0)],
    );
    let out = run_check(&dir, &[], &[&artifact]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("min_speedup_vs_serial"), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "delta table row expected:\n{stdout}");
    assert!(stdout.contains("(-25.0%)"), "relative change expected:\n{stdout}");
    assert!(stdout.contains("ok"), "the healthy metric still renders:\n{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bench gate FAILED"), "{stderr}");
    // A 9% drop stays within the default tolerance…
    write_baseline(
        &dir,
        "serving_throughput.json",
        &[("min_speedup_vs_serial", 1.64), ("min_throughput_inferences_per_s", 100.0)],
    );
    let out = run_check(&dir, &[], &[&artifact]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    // …but fails a tightened gate.
    let out = run_check(&dir, &["--tolerance", "0.05"], &[&artifact]);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_metric_missing_from_the_artifact_fails() {
    let dir = tmpdir("missing");
    let artifact = serving_artifact(&dir, 1.5, 100.0);
    // The baseline gates a metric the artifact no longer carries.
    write_baseline(
        &dir,
        "serving_throughput.json",
        &[("min_speedup_vs_serial", 1.5), ("vanished_metric", 3.0)],
    );
    let out = run_check(&dir, &[], &[&artifact]);
    assert_eq!(out.status.code(), Some(1), "a vanished metric is a regression");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vanished_metric"), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_artifacts_and_empty_invocations_fail_loudly() {
    let dir = tmpdir("unknown");
    let bogus = dir.join("BENCH_made_up.json");
    std::fs::write(&bogus, "[]").unwrap();
    let out = run_check(&dir, &[], &[&bogus]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a gated BENCH_* artifact"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(BIN).output().expect("spawn bench_check");
    assert_eq!(out.status.code(), Some(2), "no artifacts is a usage error");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_baselines_creates_the_file_and_then_passes() {
    let dir = tmpdir("write");
    let artifact = serving_artifact(&dir, 1.5, 100.0);
    let out = run_check(&dir, &["--write-baselines"], &[&artifact]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        read_baseline_metric(&dir, "serving_throughput.json", "min_speedup_vs_serial"),
        1.5
    );
    // The freshly written baseline gates its own artifact cleanly.
    let out = run_check(&dir, &[], &[&artifact]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_baselines_freezes_wall_clock_metrics_in_both_directions() {
    let dir = tmpdir("freeze");
    write_baseline(
        &dir,
        "parallel_speedup.json",
        &[("bit_identical", 1.0), ("max_speedup_vs_serial", 2.0)],
    );
    // A faster box must not raise the committed wall-clock baseline…
    let fast = parallel_artifact(&dir, true, 3.0);
    let out = run_check(&dir, &["--write-baselines"], &[&fast]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        read_baseline_metric(&dir, "parallel_speedup.json", "max_speedup_vs_serial"),
        2.0
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("frozen"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // …and a slower box must not erode it either.
    let slow = parallel_artifact(&dir, true, 1.2);
    let out = run_check(&dir, &["--write-baselines"], &[&slow]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        read_baseline_metric(&dir, "parallel_speedup.json", "max_speedup_vs_serial"),
        2.0
    );
    // Deterministic metrics refresh verbatim alongside the frozen one.
    let broken = parallel_artifact(&dir, false, 1.2);
    let out = run_check(&dir, &["--write-baselines"], &[&broken]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(read_baseline_metric(&dir, "parallel_speedup.json", "bit_identical"), 0.0);
    assert_eq!(
        read_baseline_metric(&dir, "parallel_speedup.json", "max_speedup_vs_serial"),
        2.0
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn online_serving_artifact_is_gated_end_to_end() {
    let dir = tmpdir("online");
    let artifact = dir.join("BENCH_online_serving.json");
    std::fs::write(
        &artifact,
        r#"{"sweep": [{"rate_factor": 0.25, "sustained": true}],
            "sustained_rps_at_p99": 1000.0,
            "daemon_vs_static_cycle_ratio": 1.05}"#,
    )
    .unwrap();
    let out = run_check(&dir, &["--write-baselines"], &[&artifact]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = run_check(&dir, &[], &[&artifact]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    // Losing 20% of the sustained rate trips the gate.
    std::fs::write(
        &artifact,
        r#"{"sweep": [{"rate_factor": 0.25, "sustained": true}],
            "sustained_rps_at_p99": 800.0,
            "daemon_vs_static_cycle_ratio": 1.05}"#,
    )
    .unwrap();
    let out = run_check(&dir, &[], &[&artifact]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("sustained_rps_at_p99"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_dir_all(&dir).ok();
}
