//! Shared experiment context: dataset caching, scaling, and engine runs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::engine::Engine;
use gnnie_core::report::InferenceReport;
use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_graph::{Dataset, SyntheticDataset};

/// Default seed for all harness runs (the experiments are deterministic).
pub const HARNESS_SEED: u64 = 0x0D0C_5EED;

/// The experiment context: scaling policy plus a dataset cache so the
/// expensive generators run once per process.
pub struct Ctx {
    seed: u64,
    scale_override: Option<f64>,
    cache: Mutex<HashMap<(Dataset, u64), Arc<SyntheticDataset>>>,
}

impl Ctx {
    /// A context with the default seed and the `GNNIE_SCALE` environment
    /// override (if set).
    pub fn from_env() -> Self {
        let scale_override = std::env::var("GNNIE_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|&s| s > 0.0 && s <= 1.0);
        Ctx { seed: HARNESS_SEED, scale_override, cache: Mutex::new(HashMap::new()) }
    }

    /// A context with an explicit scale for every dataset (tests).
    pub fn with_scale(scale: f64) -> Self {
        Ctx {
            seed: HARNESS_SEED,
            scale_override: Some(scale),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The scale used for `dataset`: the override if present, otherwise
    /// full size for the citation graphs and reduced sizes for the two
    /// large datasets (trends are scale-stable; see DESIGN.md §4).
    pub fn scale_for(&self, dataset: Dataset) -> f64 {
        if let Some(s) = self.scale_override {
            return s;
        }
        match dataset {
            Dataset::Cora | Dataset::Citeseer | Dataset::Pubmed => 1.0,
            Dataset::Ppi => 0.1,
            Dataset::Reddit => 0.02,
        }
    }

    /// The (cached) synthetic dataset at this context's scale.
    pub fn dataset(&self, dataset: Dataset) -> Arc<SyntheticDataset> {
        let scale = self.scale_for(dataset);
        let key = (dataset, scale.to_bits());
        let mut cache = self.cache.lock().expect("dataset cache poisoned");
        cache
            .entry(key)
            .or_insert_with(|| Arc::new(SyntheticDataset::generate(dataset, scale, self.seed)))
            .clone()
    }

    /// The paper's Table III model configuration at this context's scale.
    pub fn model_config(&self, model: GnnModel, dataset: Dataset) -> ModelConfig {
        ModelConfig::paper(model, &self.dataset(dataset).spec)
    }

    /// Runs GNNIE (paper configuration) on `model` × `dataset`.
    pub fn run_gnnie(&self, model: GnnModel, dataset: Dataset) -> InferenceReport {
        let ds = self.dataset(dataset);
        let cfg = AcceleratorConfig::paper(dataset);
        Engine::new(cfg).run(&self.model_config(model, dataset), &ds)
    }

    /// Runs GNNIE with a custom accelerator configuration.
    pub fn run_gnnie_with(
        &self,
        config: AcceleratorConfig,
        model: GnnModel,
        dataset: Dataset,
    ) -> InferenceReport {
        let ds = self.dataset(dataset);
        Engine::new(config).run(&self.model_config(model, dataset), &ds)
    }

    /// The seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_cache_returns_same_instance() {
        let ctx = Ctx::with_scale(0.05);
        let a = ctx.dataset(Dataset::Cora);
        let b = ctx.dataset(Dataset::Cora);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn default_scales_shrink_large_datasets() {
        let ctx = Ctx { seed: 1, scale_override: None, cache: Mutex::new(HashMap::new()) };
        assert_eq!(ctx.scale_for(Dataset::Cora), 1.0);
        assert!(ctx.scale_for(Dataset::Reddit) < 0.1);
    }

    #[test]
    fn gnnie_run_smoke() {
        let ctx = Ctx::with_scale(0.05);
        let r = ctx.run_gnnie(GnnModel::Gcn, Dataset::Cora);
        assert!(r.total_cycles > 0);
    }
}
