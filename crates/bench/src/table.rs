//! Minimal column-aligned table rendering for the experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are right-padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table into printable lines.
    pub fn render(&self) -> Vec<String> {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let fmt = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = Vec::with_capacity(self.rows.len() + 2);
        out.push(fmt(&self.header));
        out.push(width.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            out.push(fmt(row));
        }
        out
    }
}

/// Formats a speedup-style ratio compactly (`123456x`, `3.1x`, `0.42x`).
pub fn fmt_ratio(x: f64) -> String {
    if !x.is_finite() {
        return "inf".into();
    }
    if x >= 100.0 {
        format!("{:.0}x", x)
    } else if x >= 1.0 {
        format!("{:.1}x", x)
    } else {
        format!("{:.2}x", x)
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["xx".into(), "y".into()]);
        let lines = t.render();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xx"));
    }

    #[test]
    fn ratio_formats_by_magnitude() {
        assert_eq!(fmt_ratio(21233.4), "21233x");
        assert_eq!(fmt_ratio(2.13), "2.1x");
        assert_eq!(fmt_ratio(0.5), "0.50x");
    }

    #[test]
    fn seconds_pick_sane_units() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.50 us");
    }

    #[test]
    fn count_groups_thousands() {
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }
}
