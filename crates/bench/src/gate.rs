//! The CI perf-regression gate over the `BENCH_*.json` trajectory.
//!
//! CI records three perf artifacts per run — serving throughput, ingest
//! throughput, and the parallel-simulation speedup — and this module
//! turns them from *recorded* numbers into *gated* ones: each artifact is
//! reduced to a few **headline metrics** (all higher-is-better), compared
//! against the checked-in `bench/baselines/*.json`, and a drop of more
//! than the tolerance (10% by default) fails the job with a per-metric
//! delta table. `gnnie-bench --bin bench_check` is the front end.
//!
//! Two kinds of headline metric coexist deliberately:
//!
//! * **deterministic** metrics (simulated-cycle ratios, bit-identity
//!   flags) — exact run to run, so their baselines are tight;
//! * **wall-clock** metrics (build/run speedups measured on the host) —
//!   noisy on shared CI boxes, so their committed baselines are set
//!   conservatively and only large regressions trip the gate.
//!
//! Baselines are refreshed by re-running the benches and passing
//! `--write-baselines` (see the README's bench-gate workflow).

use crate::json::Json;

/// Relative drop that fails the gate (10%).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One headline metric extracted from an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (stable across runs; the baseline key).
    pub name: String,
    /// Measured value (higher is better for every gate metric).
    pub value: f64,
}

impl Metric {
    fn new(name: &str, value: f64) -> Self {
        Metric { name: name.to_string(), value }
    }
}

/// One row of the delta table.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// The checked-in baseline value (`None` = metric missing from the
    /// baseline file, reported but not gated).
    pub baseline: Option<f64>,
    /// The freshly measured value (`None` = metric vanished from the
    /// artifact, which is itself a regression).
    pub current: Option<f64>,
    /// Whether this row fails the gate.
    pub regressed: bool,
}

impl Delta {
    /// `current / baseline - 1`, when both sides exist and the baseline
    /// is nonzero.
    pub fn relative_change(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b != 0.0 => Some(c / b - 1.0),
            _ => None,
        }
    }
}

/// The artifact stem (no directory, no `.json`) the gate knows how to
/// reduce, or `None` for an unknown file.
fn artifact_stem(artifact: &str) -> Option<&str> {
    let stem = artifact.rsplit('/').next()?.strip_suffix(".json")?;
    [
        "BENCH_serving_throughput",
        "BENCH_ingest_throughput",
        "BENCH_parallel_speedup",
        "BENCH_online_serving",
        "BENCH_scaleout",
        "BENCH_tiered_cache",
    ]
    .into_iter()
    .find(|&known| known == stem)
}

/// The baseline file name for an artifact (`BENCH_foo.json` →
/// `foo.json`).
///
/// # Errors
///
/// Unknown artifacts are rejected so a typo in CI fails loudly.
pub fn baseline_file_for(artifact: &str) -> Result<String, String> {
    let stem = artifact_stem(artifact)
        .ok_or_else(|| format!("`{artifact}` is not a gated BENCH_* artifact"))?;
    Ok(format!("{}.json", stem.trim_start_matches("BENCH_")))
}

/// Reduces a parsed artifact to its headline metrics.
///
/// # Errors
///
/// Unknown artifact names, or an artifact whose shape no longer matches
/// what its bench bin writes.
pub fn headline_metrics(artifact: &str, json: &Json) -> Result<Vec<Metric>, String> {
    match artifact_stem(artifact) {
        Some("BENCH_serving_throughput") => serving_metrics(json),
        Some("BENCH_ingest_throughput") => ingest_metrics(json),
        Some("BENCH_parallel_speedup") => parallel_metrics(json),
        Some("BENCH_online_serving") => online_metrics(json),
        Some("BENCH_scaleout") => scaleout_metrics(json),
        Some("BENCH_tiered_cache") => tiered_metrics(json),
        _ => Err(format!("`{artifact}` is not a gated BENCH_* artifact")),
    }
}

fn field(row: &Json, key: &str, what: &str) -> Result<f64, String> {
    row.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: row is missing numeric `{key}`"))
}

fn flag(row: &Json, key: &str, what: &str) -> Result<bool, String> {
    row.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{what}: row is missing boolean `{key}`"))
}

/// Serving: simulated-cycle numbers, deterministic run to run. The gate
/// takes the *worst* row of the sweep so no mix can regress unnoticed.
fn serving_metrics(json: &Json) -> Result<Vec<Metric>, String> {
    let rows = json.as_arr().ok_or("serving artifact: expected a top-level array")?;
    if rows.is_empty() {
        return Err("serving artifact: empty sweep".into());
    }
    let mut min_speedup = f64::INFINITY;
    let mut min_throughput = f64::INFINITY;
    for row in rows {
        min_speedup = min_speedup.min(field(row, "speedup_vs_serial", "serving")?);
        min_throughput =
            min_throughput.min(field(row, "throughput_inferences_per_s", "serving")?);
    }
    Ok(vec![
        Metric::new("min_speedup_vs_serial", min_speedup),
        Metric::new("min_throughput_inferences_per_s", min_throughput),
    ])
}

/// Ingest: the bit-identity flag is deterministic; the build speedup is
/// wall-clock (conservative baseline). The speedup maximum deliberately
/// skips the `shards = 1` rows — a one-shard build measures the serial
/// path against itself (~1x by construction), so including it would let
/// a broken multi-shard path hide behind the trivial row.
fn ingest_metrics(json: &Json) -> Result<Vec<Metric>, String> {
    let rows = json
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or("ingest artifact: expected a `sweep` array")?;
    if rows.is_empty() {
        return Err("ingest artifact: empty sweep".into());
    }
    let mut all_identical = true;
    let mut max_speedup = f64::NEG_INFINITY;
    for row in rows {
        all_identical &= flag(row, "matches_serial", "ingest")?;
        if field(row, "shards", "ingest")? > 1.0 {
            max_speedup = max_speedup.max(field(row, "speedup_vs_serial", "ingest")?);
        }
    }
    if max_speedup == f64::NEG_INFINITY {
        return Err("ingest artifact: no multi-shard rows to gate".into());
    }
    // The out-of-core row: the chunked external builder's bit-identity
    // is deterministic; the snapshot-load-vs-reparse speedup is wall
    // clock (conservative baseline, demotable on single-core runners).
    let oc = json.get("outofcore").ok_or("ingest artifact: missing `outofcore` object")?;
    let oc_identical = flag(oc, "bit_identical", "ingest outofcore")?;
    let oc_speedup = field(oc, "load_speedup_vs_reparse", "ingest outofcore")?;
    Ok(vec![
        Metric::new("bit_identical", f64::from(u8::from(all_identical))),
        Metric::new("max_build_speedup_vs_serial", max_speedup),
        Metric::new("outofcore_bit_identical", f64::from(u8::from(oc_identical))),
        Metric::new("outofcore_load_speedup_vs_reparse", oc_speedup),
    ])
}

/// Parallel simulation: the equality flag is deterministic; the thread
/// speedup is wall-clock (conservative baseline). As with ingest, the
/// maximum skips the `threads = 1` rows — they rerun the serial code
/// path, so a regression in the actually-parallel path must not be able
/// to hide behind their ~1x.
fn parallel_metrics(json: &Json) -> Result<Vec<Metric>, String> {
    let rows = json.as_arr().ok_or("parallel artifact: expected a top-level array")?;
    if rows.is_empty() {
        return Err("parallel artifact: empty sweep".into());
    }
    let mut all_identical = true;
    let mut max_speedup = f64::NEG_INFINITY;
    for row in rows {
        all_identical &= flag(row, "identical", "parallel")?;
        if field(row, "threads", "parallel")? > 1.0 {
            max_speedup = max_speedup.max(field(row, "speedup_vs_serial", "parallel")?);
        }
    }
    if max_speedup == f64::NEG_INFINITY {
        return Err("parallel artifact: no multi-thread rows to gate".into());
    }
    Ok(vec![
        Metric::new("bit_identical", f64::from(u8::from(all_identical))),
        Metric::new("max_speedup_vs_serial", max_speedup),
    ])
}

/// Online serving: sustained request rate under the p99 bound and the
/// online-vs-static-planner cycle ratio. Both are simulated-cycle
/// numbers — deterministic run to run — so the baselines stay tight.
fn online_metrics(json: &Json) -> Result<Vec<Metric>, String> {
    let rows = json
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or("online artifact: expected a `sweep` array")?;
    if rows.is_empty() {
        return Err("online artifact: empty sweep".into());
    }
    let sustained = json
        .get("sustained_rps_at_p99")
        .and_then(Json::as_f64)
        .ok_or("online artifact: missing numeric `sustained_rps_at_p99`")?;
    let ratio = json
        .get("daemon_vs_static_cycle_ratio")
        .and_then(Json::as_f64)
        .ok_or("online artifact: missing numeric `daemon_vs_static_cycle_ratio`")?;
    Ok(vec![
        Metric::new("sustained_rps_at_p99", sustained),
        Metric::new("daemon_vs_static_cycle_ratio", ratio),
    ])
}

/// Multi-accelerator scale-out: the best 4-chip simulated-cycle speedup
/// and how many datasets actually scale (speedup > 1x) at 4 chips — the
/// acceptance bar is at least the two large datasets. Simulated cycles,
/// deterministic run to run, so the baselines stay tight.
fn scaleout_metrics(json: &Json) -> Result<Vec<Metric>, String> {
    let rows = json
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or("scaleout artifact: expected a `sweep` array")?;
    if rows.is_empty() {
        return Err("scaleout artifact: empty sweep".into());
    }
    let mut max_speedup = f64::NEG_INFINITY;
    let mut scaling_datasets = 0.0;
    for row in rows {
        if field(row, "chips", "scaleout")? != 4.0 {
            continue;
        }
        let speedup = field(row, "speedup_vs_single_chip", "scaleout")?;
        max_speedup = max_speedup.max(speedup);
        if speedup > 1.0 {
            scaling_datasets += 1.0;
        }
    }
    if max_speedup == f64::NEG_INFINITY {
        return Err("scaleout artifact: no 4-chip rows to gate".into());
    }
    Ok(vec![
        Metric::new("max_speedup_at_4_chips", max_speedup),
        Metric::new("datasets_scaling_at_4_chips", scaling_datasets),
    ])
}

/// Tiered feature cache: how well the workload-aware split of one
/// global budget holds up against the naive even split. The sweep pairs
/// an `even` and a `workload` row per dataset; the gate reduces the
/// pairs to the workload split's mean on-chip hit rate, the number of
/// datasets it wins on total cycles (the acceptance bar is at least
/// two), and the mean even/workload cycle ratio (> 1 means the workload
/// split is faster). Simulated cycles, deterministic run to run, so the
/// baselines stay tight.
fn tiered_metrics(json: &Json) -> Result<Vec<Metric>, String> {
    let rows = json
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or("tiered artifact: expected a `sweep` array")?;
    // Pair rows by dataset: mode "even" holds the baseline cycles the
    // matching "workload" row is judged against.
    let mut even_cycles: Vec<(String, f64)> = Vec::new();
    let mut hit_sum = 0.0;
    let mut ratio_sum = 0.0;
    let mut wins = 0.0;
    let mut pairs = 0.0;
    for row in rows {
        let dataset = match row.get("dataset") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("tiered artifact: row is missing string `dataset`".into()),
        };
        let cycles = field(row, "total_cycles", "tiered")?;
        match row.get("mode") {
            Some(Json::Str(m)) if m == "even" => even_cycles.push((dataset, cycles)),
            Some(Json::Str(m)) if m == "workload" => {
                let (_, even) =
                    even_cycles.iter().find(|(d, _)| *d == dataset).ok_or_else(|| {
                        format!("tiered artifact: workload row for `{dataset}` has no even row")
                    })?;
                hit_sum += field(row, "onchip_hit_rate", "tiered")?;
                ratio_sum += even / cycles.max(1.0);
                if cycles < *even {
                    wins += 1.0;
                }
                pairs += 1.0;
            }
            _ => return Err("tiered artifact: row is missing `mode` even|workload".into()),
        }
    }
    if pairs == 0.0 {
        return Err("tiered artifact: no even/workload pairs to gate".into());
    }
    Ok(vec![
        Metric::new("workload_mean_onchip_hit_rate", hit_sum / pairs),
        Metric::new("datasets_won_by_workload_split", wins),
        Metric::new("mean_cycle_ratio_even_over_workload", ratio_sum / pairs),
    ])
}

/// Metrics measured in host wall clock — noisy on shared CI runners, so
/// their committed baselines stay deliberately conservative. The
/// `--write-baselines` refresh *freezes* these: a committed value is
/// kept verbatim, never raised (a fast dev laptop would bake in a
/// baseline CI can never meet) and never lowered (one slow CI box would
/// silently erode the gate). Changing them is a manual edit of the
/// baseline file. Everything else is deterministic and refreshed
/// verbatim.
pub fn is_wall_clock(name: &str) -> bool {
    matches!(
        name,
        "max_build_speedup_vs_serial"
            | "max_speedup_vs_serial"
            | "outofcore_load_speedup_vs_reparse"
    )
}

/// Reads the `{"artifact": ..., "metrics": {...}}` baseline document.
///
/// # Errors
///
/// Malformed documents, or a non-numeric metric value.
pub fn parse_baseline(text: &str) -> Result<Vec<Metric>, String> {
    let doc = Json::parse(text)?;
    let members = match doc.get("metrics") {
        Some(Json::Obj(members)) => members,
        _ => return Err("baseline: expected a `metrics` object".into()),
    };
    members
        .iter()
        .map(|(name, v)| {
            v.as_f64()
                .map(|value| Metric { name: name.clone(), value })
                .ok_or_else(|| format!("baseline metric `{name}` is not a number"))
        })
        .collect()
}

/// Renders a baseline document for `--write-baselines`.
pub fn render_baseline(artifact: &str, metrics: &[Metric]) -> String {
    let mut out = format!("{{\n  \"artifact\": \"{artifact}\",\n  \"metrics\": {{\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.4}{}\n",
            m.name,
            m.value,
            if i + 1 == metrics.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// One line per metric describing how a `--write-baselines` refresh
/// changed the committed baseline — `old -> new (+x.x%)`, `new`,
/// `removed`, or `unchanged` — so a refresh says what it did instead of
/// rewriting silently. `prev` is the previously committed baseline
/// (empty when the file did not exist); `next` is what is about to be
/// written, *after* wall-clock freezing, so a frozen metric correctly
/// reads `unchanged`. Values are compared at the 4-decimal precision
/// the baseline file stores, so re-parsing noise never shows as drift.
pub fn render_refresh_summary(prev: &[Metric], next: &[Metric]) -> Vec<String> {
    let rounded = |v: f64| format!("{v:.4}");
    let mut lines = Vec::new();
    for n in next {
        match prev.iter().find(|p| p.name == n.name) {
            None => lines.push(format!(
                "  {:<34} {:>10} -> {:>10}  new",
                n.name,
                "--",
                rounded(n.value)
            )),
            Some(p) if rounded(p.value) == rounded(n.value) => lines.push(format!(
                "  {:<34} {:>10} -> {:>10}  unchanged",
                n.name,
                rounded(p.value),
                rounded(n.value)
            )),
            Some(p) => {
                let change = if p.value != 0.0 {
                    format!("  ({:+.1}%)", (n.value / p.value - 1.0) * 100.0)
                } else {
                    String::new()
                };
                lines.push(format!(
                    "  {:<34} {:>10} -> {:>10}{change}",
                    n.name,
                    rounded(p.value),
                    rounded(n.value)
                ));
            }
        }
    }
    for p in prev {
        if !next.iter().any(|n| n.name == p.name) {
            lines.push(format!(
                "  {:<34} {:>10} -> {:>10}  removed",
                p.name,
                rounded(p.value),
                "--"
            ));
        }
    }
    lines
}

/// Compares fresh metrics against the baseline: a metric regresses when
/// it drops more than `tolerance` below its baseline (all gate metrics
/// are higher-is-better), or when it disappears from the artifact.
/// Metrics present only in the artifact are informational.
pub fn compare(baseline: &[Metric], current: &[Metric], tolerance: f64) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for b in baseline {
        let c = current.iter().find(|m| m.name == b.name);
        let regressed = match c {
            None => true,
            Some(m) => m.value < b.value * (1.0 - tolerance),
        };
        deltas.push(Delta {
            name: b.name.clone(),
            baseline: Some(b.value),
            current: c.map(|m| m.value),
            regressed,
        });
    }
    for m in current {
        if !baseline.iter().any(|b| b.name == m.name) {
            deltas.push(Delta {
                name: m.name.clone(),
                baseline: None,
                current: Some(m.value),
                regressed: false,
            });
        }
    }
    deltas
}

/// Downgrades regressed **wall-clock** deltas to informational, returning
/// the names downgraded. `bench_check` applies this when the runner
/// reports a single core: multi-thread / multi-shard wall-clock speedups
/// are physically unreachable there (forced workers only add overhead),
/// so those rows must not fail the gate — the deterministic
/// simulated-cycle metrics still do.
pub fn demote_wall_clock_regressions(deltas: &mut [Delta]) -> Vec<String> {
    let mut demoted = Vec::new();
    for d in deltas.iter_mut() {
        if d.regressed && is_wall_clock(&d.name) {
            d.regressed = false;
            demoted.push(d.name.clone());
        }
    }
    demoted
}

/// Renders the per-metric delta table for one artifact.
pub fn render_deltas(artifact: &str, deltas: &[Delta], tolerance: f64) -> Vec<String> {
    let mut lines =
        vec![format!("{artifact} (fail below {:.0}% of baseline):", (1.0 - tolerance) * 100.0)];
    for d in deltas {
        let fmt = |v: Option<f64>| v.map_or_else(|| "--".to_string(), |x| format!("{x:.4}"));
        let change =
            d.relative_change().map_or_else(String::new, |r| format!("  ({:+.1}%)", r * 100.0));
        let status = if d.regressed {
            "REGRESSED"
        } else if d.baseline.is_none() {
            "new (ungated)"
        } else {
            "ok"
        };
        lines.push(format!(
            "  {:<34} baseline {:>10}  current {:>10}{change}  {status}",
            d.name,
            fmt(d.baseline),
            fmt(d.current),
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Vec<Metric> {
        pairs.iter().map(|&(n, v)| Metric::new(n, v)).collect()
    }

    #[test]
    fn baseline_names_map_and_unknown_artifacts_fail() {
        assert_eq!(
            baseline_file_for("BENCH_serving_throughput.json").unwrap(),
            "serving_throughput.json"
        );
        assert_eq!(
            baseline_file_for("some/dir/BENCH_parallel_speedup.json").unwrap(),
            "parallel_speedup.json"
        );
        assert!(baseline_file_for("BENCH_unknown.json").is_err());
        assert!(baseline_file_for("serving_throughput.json").is_err());
    }

    #[test]
    fn serving_metrics_take_the_worst_row() {
        let doc = Json::parse(
            r#"[{"speedup_vs_serial": 2.0, "throughput_inferences_per_s": 100.0},
                {"speedup_vs_serial": 1.5, "throughput_inferences_per_s": 900.0}]"#,
        )
        .unwrap();
        let m = headline_metrics("BENCH_serving_throughput.json", &doc).unwrap();
        assert_eq!(
            m,
            metrics(&[
                ("min_speedup_vs_serial", 1.5),
                ("min_throughput_inferences_per_s", 100.0),
            ])
        );
    }

    #[test]
    fn ingest_and_parallel_metrics_fold_flags_and_speedups() {
        // The shards=1 / threads=1 rows rerun the serial path (~1x by
        // construction) and must NOT feed the wall-clock maximum — a
        // broken parallel path cannot hide behind them.
        let ingest = Json::parse(
            r#"{"sweep": [{"matches_serial": true, "shards": 1, "speedup_vs_serial": 2.5},
                          {"matches_serial": true, "shards": 4, "speedup_vs_serial": 0.9},
                          {"matches_serial": true, "shards": 8, "speedup_vs_serial": 2.1}],
                "cache": [],
                "outofcore": {"bit_identical": true, "load_speedup_vs_reparse": 12.5}}"#,
        )
        .unwrap();
        let m = headline_metrics("BENCH_ingest_throughput.json", &ingest).unwrap();
        assert_eq!(
            m,
            metrics(&[
                ("bit_identical", 1.0),
                ("max_build_speedup_vs_serial", 2.1),
                ("outofcore_bit_identical", 1.0),
                ("outofcore_load_speedup_vs_reparse", 12.5),
            ])
        );
        // The snapshot-load speedup is wall clock; the identity flags
        // are deterministic.
        assert!(is_wall_clock("outofcore_load_speedup_vs_reparse"));
        assert!(!is_wall_clock("outofcore_bit_identical"));
        // An artifact without the out-of-core row fails loudly.
        let missing_oc =
            Json::parse(r#"{"sweep": [{"matches_serial": true, "shards": 4, "speedup_vs_serial": 1.5}], "cache": []}"#)
                .unwrap();
        assert!(headline_metrics("BENCH_ingest_throughput.json", &missing_oc).is_err());
        let parallel = Json::parse(
            r#"[{"identical": true, "threads": 1, "speedup_vs_serial": 1.0},
                {"identical": false, "threads": 4, "speedup_vs_serial": 1.8}]"#,
        )
        .unwrap();
        let m = headline_metrics("BENCH_parallel_speedup.json", &parallel).unwrap();
        assert_eq!(m, metrics(&[("bit_identical", 0.0), ("max_speedup_vs_serial", 1.8)]));
        // A sweep with only trivial rows cannot be gated.
        let only_serial =
            Json::parse(r#"[{"identical": true, "threads": 1, "speedup_vs_serial": 1.0}]"#)
                .unwrap();
        assert!(headline_metrics("BENCH_parallel_speedup.json", &only_serial).is_err());
    }

    #[test]
    fn online_metrics_read_the_headline_fields() {
        let doc = Json::parse(
            r#"{"sweep": [{"rate_factor": 0.25, "sustained": true}],
                "sustained_rps_at_p99": 1234.5,
                "daemon_vs_static_cycle_ratio": 1.07}"#,
        )
        .unwrap();
        let m = headline_metrics("BENCH_online_serving.json", &doc).unwrap();
        assert_eq!(
            m,
            metrics(&[
                ("sustained_rps_at_p99", 1234.5),
                ("daemon_vs_static_cycle_ratio", 1.07),
            ])
        );
        assert_eq!(
            baseline_file_for("artifacts/BENCH_online_serving.json").unwrap(),
            "online_serving.json"
        );
        // Both metrics are simulated-cycle numbers, not wall clock.
        assert!(!is_wall_clock("sustained_rps_at_p99"));
        assert!(!is_wall_clock("daemon_vs_static_cycle_ratio"));
        // Shape drift fails loudly.
        let empty = Json::parse(r#"{"sweep": [], "sustained_rps_at_p99": 1.0}"#).unwrap();
        assert!(headline_metrics("BENCH_online_serving.json", &empty).is_err());
        let missing = Json::parse(r#"{"sweep": [{"rate_factor": 1.0}]}"#).unwrap();
        assert!(headline_metrics("BENCH_online_serving.json", &missing).is_err());
    }

    #[test]
    fn scaleout_metrics_reduce_the_4_chip_rows() {
        let doc = Json::parse(
            r#"{"sweep": [
                  {"dataset": "cr", "chips": 1, "speedup_vs_single_chip": 1.0},
                  {"dataset": "cr", "chips": 4, "speedup_vs_single_chip": 0.6},
                  {"dataset": "ppi", "chips": 4, "speedup_vs_single_chip": 2.0},
                  {"dataset": "rd", "chips": 4, "speedup_vs_single_chip": 4.5},
                  {"dataset": "rd", "chips": 8, "speedup_vs_single_chip": 6.1}],
                "cut_quality": []}"#,
        )
        .unwrap();
        let m = headline_metrics("BENCH_scaleout.json", &doc).unwrap();
        assert_eq!(
            m,
            metrics(&[("max_speedup_at_4_chips", 4.5), ("datasets_scaling_at_4_chips", 2.0)])
        );
        assert_eq!(baseline_file_for("BENCH_scaleout.json").unwrap(), "scaleout.json");
        // Simulated-cycle numbers, not wall clock: gated tightly even on
        // a single-core runner.
        assert!(!is_wall_clock("max_speedup_at_4_chips"));
        assert!(!is_wall_clock("datasets_scaling_at_4_chips"));
        // A sweep with no 4-chip rows cannot be gated.
        let trivial =
            Json::parse(r#"{"sweep": [{"chips": 1, "speedup_vs_single_chip": 1.0}]}"#).unwrap();
        assert!(headline_metrics("BENCH_scaleout.json", &trivial).is_err());
    }

    #[test]
    fn tiered_metrics_pair_even_and_workload_rows_per_dataset() {
        let doc = Json::parse(
            r#"{"sweep": [
                  {"dataset": "cr", "mode": "even", "onchip_hit_rate": 0.10, "total_cycles": 1000},
                  {"dataset": "cr", "mode": "workload", "onchip_hit_rate": 0.60, "total_cycles": 800},
                  {"dataset": "rd", "mode": "even", "onchip_hit_rate": 0.05, "total_cycles": 4000},
                  {"dataset": "rd", "mode": "workload", "onchip_hit_rate": 0.40, "total_cycles": 5000}]}"#,
        )
        .unwrap();
        let m = headline_metrics("BENCH_tiered_cache.json", &doc).unwrap();
        assert_eq!(m[0], Metric::new("workload_mean_onchip_hit_rate", 0.5));
        assert_eq!(m[1], Metric::new("datasets_won_by_workload_split", 1.0));
        // (1000/800 + 4000/5000) / 2 = (1.25 + 0.8) / 2
        assert!((m[2].value - 1.025).abs() < 1e-12, "{:?}", m[2]);
        assert_eq!(baseline_file_for("BENCH_tiered_cache.json").unwrap(), "tiered_cache.json");
        // Simulated-cycle numbers, not wall clock: gated tightly even on
        // a single-core runner.
        assert!(!is_wall_clock("workload_mean_onchip_hit_rate"));
        assert!(!is_wall_clock("datasets_won_by_workload_split"));
        // A workload row with no even partner, and an empty sweep, fail
        // loudly rather than gating nothing.
        let orphan = Json::parse(
            r#"{"sweep": [{"dataset": "cr", "mode": "workload",
                           "onchip_hit_rate": 0.6, "total_cycles": 800}]}"#,
        )
        .unwrap();
        assert!(headline_metrics("BENCH_tiered_cache.json", &orphan).is_err());
        let empty = Json::parse(r#"{"sweep": []}"#).unwrap();
        assert!(headline_metrics("BENCH_tiered_cache.json", &empty).is_err());
    }

    #[test]
    fn single_core_demotion_spares_wall_clock_rows_only() {
        let base = metrics(&[
            ("max_speedup_vs_serial", 2.0),
            ("bit_identical", 1.0),
            ("max_build_speedup_vs_serial", 1.8),
        ]);
        let cur = metrics(&[
            ("max_speedup_vs_serial", 0.9), // unreachable on one core
            ("bit_identical", 0.0),         // real regression, must survive
            ("max_build_speedup_vs_serial", 0.8),
        ]);
        let mut deltas = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(deltas.iter().filter(|d| d.regressed).count(), 3);
        let demoted = demote_wall_clock_regressions(&mut deltas);
        assert_eq!(
            demoted,
            vec![
                "max_speedup_vs_serial".to_string(),
                "max_build_speedup_vs_serial".to_string()
            ]
        );
        let still: Vec<&str> =
            deltas.iter().filter(|d| d.regressed).map(|d| d.name.as_str()).collect();
        assert_eq!(still, vec!["bit_identical"], "deterministic metrics still gate");
    }

    #[test]
    fn compare_flags_drops_beyond_tolerance_and_missing_metrics() {
        let base = metrics(&[("a", 1.0), ("b", 100.0), ("gone", 5.0)]);
        let cur = metrics(&[("a", 0.91), ("b", 85.0), ("extra", 7.0)]);
        let deltas = compare(&base, &cur, DEFAULT_TOLERANCE);
        let by_name = |n: &str| deltas.iter().find(|d| d.name == n).unwrap();
        assert!(!by_name("a").regressed, "9% down is within the 10% gate");
        assert!(by_name("b").regressed, "15% down fails");
        assert!(by_name("gone").regressed, "vanished metric fails");
        assert!(!by_name("extra").regressed, "new metric is informational");
        let rendered = render_deltas("BENCH_x.json", &deltas, DEFAULT_TOLERANCE).join("\n");
        assert!(rendered.contains("REGRESSED") && rendered.contains("ok"), "{rendered}");
    }

    #[test]
    fn refresh_summary_names_changed_added_removed_and_unchanged() {
        let prev = metrics(&[("kept", 2.0), ("moved", 100.0), ("dropped", 5.0)]);
        let next = metrics(&[("kept", 2.0), ("moved", 120.0), ("added", 7.0)]);
        let lines = render_refresh_summary(&prev, &next).join("\n");
        assert!(lines.contains("kept") && lines.contains("unchanged"), "{lines}");
        assert!(
            lines.contains("100.0000 ->   120.0000  (+20.0%)"),
            "change shows old, new, and percent: {lines}"
        );
        assert!(lines.contains("added") && lines.contains("new"), "{lines}");
        assert!(lines.contains("dropped") && lines.contains("removed"), "{lines}");
        // Values that only differ past the stored 4-decimal precision do
        // not read as drift.
        let noisy =
            render_refresh_summary(&metrics(&[("x", 1.23456789)]), &metrics(&[("x", 1.23459)]))
                .join("\n");
        assert!(noisy.contains("unchanged"), "{noisy}");
        // A first-ever refresh (no committed baseline) lists every
        // metric as new.
        let first = render_refresh_summary(&[], &metrics(&[("a", 1.0)])).join("\n");
        assert!(first.contains("a") && first.contains("new"), "{first}");
    }

    #[test]
    fn baselines_roundtrip_through_render_and_parse() {
        let m = metrics(&[("min_speedup_vs_serial", 1.8251), ("bit_identical", 1.0)]);
        let text = render_baseline("BENCH_serving_throughput.json", &m);
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back, metrics(&[("min_speedup_vs_serial", 1.8251), ("bit_identical", 1.0)]));
        assert!(parse_baseline("{\"metrics\": 3}").is_err());
    }
}
