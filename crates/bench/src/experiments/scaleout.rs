//! Multi-accelerator scale-out sweep — simulated `Engine::run` cycles at
//! 1/2/4/8 chips, with the inter-chip link traffic each row pays.
//!
//! The engine shards the Aggregation cache walk by graph partition when
//! `chips > 1`: each chip walks its induced subgraph with a private cache
//! and DRAM channel, boundary-vertex features cross a configurable
//! inter-chip link, and the merged report's `total_cycles` is the
//! makespan over chips. Everything here is a **simulated-cycle** number —
//! deterministic run to run — so the `bench_check` baselines stay tight.
//! CI uploads the sweep as `BENCH_scaleout.json`.
//!
//! Expect the citation graphs to *slow down* under partitioning at bench
//! scales: their per-chip work is tiny, so the fixed link latency plus
//! boundary traffic dominates (the link-bound regime). The two large
//! datasets (PPI, Reddit) have enough per-chip work to amortize the link
//! and show real speedup — those rows carry the acceptance bar.

use gnnie_core::config::AcceleratorConfig;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::{Dataset, GraphPartition, PartitionerKind};

use crate::{Ctx, ExperimentResult, Table};

/// Simulated accelerator counts swept per dataset.
pub const CHIP_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The partitioner the cycle sweep runs. The cut-quality table compares
/// both kinds; the cycle sweep uses the degree-balanced greedy edge-cut.
pub const SWEEP_PARTITIONER: PartitionerKind = PartitionerKind::EdgeCut;

/// The chip count the cut-quality comparison partitions for.
pub const CUT_CHIPS: usize = 4;

/// One (dataset, chips) measurement.
#[derive(Debug, Clone)]
pub struct ScaleoutRow {
    /// Table II dataset.
    pub dataset: Dataset,
    /// Simulated accelerator count (1 = the unchanged single-chip engine).
    pub chips: usize,
    /// End-to-end simulated cycles (makespan over chips).
    pub total_cycles: u64,
    /// Single-chip cycles / this row's cycles (simulated, deterministic).
    pub speedup: f64,
    /// Boundary feature bytes that crossed the inter-chip link.
    pub inter_chip_bytes: u64,
    /// Link cycles charged for that traffic (latency + serialization).
    pub inter_chip_cycles: u64,
}

/// One (dataset, partitioner) cut-quality measurement at [`CUT_CHIPS`]
/// partitions — graph-only, no engine run.
#[derive(Debug, Clone)]
pub struct CutRow {
    /// Table II dataset.
    pub dataset: Dataset,
    /// Partitioning strategy.
    pub partitioner: PartitionerKind,
    /// Distinct undirected edges crossing partition boundaries.
    pub cut_edges: u64,
    /// Halo vertices summed over partitions (remote neighbors each chip
    /// must fetch over the link).
    pub halo_vertices: u64,
    /// Undirected edges in the whole graph (for the cut fraction).
    pub total_edges: u64,
}

impl CutRow {
    /// `cut_edges / total_edges`.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            return 0.0;
        }
        self.cut_edges as f64 / self.total_edges as f64
    }
}

/// Runs the chip sweep over every Table II dataset at the context's
/// scale (GCN, paper configuration, [`SWEEP_PARTITIONER`]).
pub fn sweep(ctx: &Ctx) -> Vec<ScaleoutRow> {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let mut single_chip_cycles = 0u64;
        for chips in CHIP_SWEEP {
            let mut cfg = AcceleratorConfig::paper(dataset);
            cfg.chips = chips;
            cfg.partitioner = SWEEP_PARTITIONER;
            let report = ctx.run_gnnie_with(cfg, GnnModel::Gcn, dataset);
            if chips == 1 {
                single_chip_cycles = report.total_cycles;
            }
            rows.push(ScaleoutRow {
                dataset,
                chips,
                total_cycles: report.total_cycles,
                speedup: single_chip_cycles as f64 / report.total_cycles.max(1) as f64,
                inter_chip_bytes: report.inter_chip_bytes(),
                inter_chip_cycles: report.inter_chip_cycles(),
            });
        }
    }
    rows
}

/// Partition-quality comparison: cut edges and halo size for both
/// partitioners at [`CUT_CHIPS`] partitions (no engine runs — this is
/// pure graph bookkeeping, cheap even on Reddit).
pub fn cut_quality(ctx: &Ctx) -> Vec<CutRow> {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let ds = ctx.dataset(dataset);
        for kind in PartitionerKind::ALL {
            let p = GraphPartition::build(&ds.graph, CUT_CHIPS, kind);
            rows.push(CutRow {
                dataset,
                partitioner: kind,
                cut_edges: p.cut_edges(),
                halo_vertices: p.parts().iter().map(|part| part.halo_vertices).sum(),
                total_edges: ds.graph.num_edges() as u64,
            });
        }
    }
    rows
}

/// Regenerates the scale-out tables.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    render(&sweep(ctx), &cut_quality(ctx))
}

/// Renders already-computed sweeps (the bin reuses one sweep for the
/// table and the JSON artifact).
pub fn render(rows: &[ScaleoutRow], cuts: &[CutRow]) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "chips",
        "total cycles",
        "speedup",
        "link bytes",
        "link cycles",
    ]);
    for r in rows {
        t.row(vec![
            r.dataset.abbrev().to_string(),
            r.chips.to_string(),
            r.total_cycles.to_string(),
            format!("{:.2}x", r.speedup),
            r.inter_chip_bytes.to_string(),
            r.inter_chip_cycles.to_string(),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(format!(
        "partition quality at {CUT_CHIPS} chips (cut edges and per-chip remote \
         neighbors; no engine runs):"
    ));
    let mut q = Table::new(&["dataset", "partitioner", "cut edges", "cut %", "halo vertices"]);
    for c in cuts {
        q.row(vec![
            c.dataset.abbrev().to_string(),
            c.partitioner.name().to_string(),
            c.cut_edges.to_string(),
            format!("{:.1}%", c.cut_fraction() * 100.0),
            c.halo_vertices.to_string(),
        ]);
    }
    lines.extend(q.render());
    lines.push(String::new());
    lines.push(
        "speedup is simulated cycles (single-chip / makespan over chips), so rows are \
         deterministic; small graphs go link-bound (fixed link latency + boundary \
         traffic dwarf their per-chip work) while PPI and Reddit amortize the link \
         and scale"
            .to_string(),
    );
    ExperimentResult {
        id: "Scaleout",
        title: "Multi-accelerator scale-out (partitioned cache walk)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_are_complete_and_single_chip_anchors_speedup() {
        let ctx = Ctx::with_scale(0.02);
        let rows = sweep(&ctx);
        assert_eq!(rows.len(), Dataset::ALL.len() * CHIP_SWEEP.len());
        for chunk in rows.chunks(CHIP_SWEEP.len()) {
            assert_eq!(chunk[0].chips, 1);
            assert!((chunk[0].speedup - 1.0).abs() < 1e-12, "chips=1 is the reference");
            assert_eq!(chunk[0].inter_chip_bytes, 0, "single chip pays no link traffic");
            assert_eq!(chunk[0].inter_chip_cycles, 0);
            for r in &chunk[1..] {
                assert!(r.chips > 1);
                assert!(r.total_cycles > 0);
                assert!(r.inter_chip_bytes > 0, "{:?} @ {} chips", r.dataset, r.chips);
                assert!(r.speedup.is_finite() && r.speedup > 0.0);
            }
        }
    }

    #[test]
    fn cut_quality_covers_both_partitioners_and_edgecut_never_loses() {
        let ctx = Ctx::with_scale(0.02);
        let cuts = cut_quality(&ctx);
        assert_eq!(cuts.len(), Dataset::ALL.len() * PartitionerKind::ALL.len());
        for chunk in cuts.chunks(PartitionerKind::ALL.len()) {
            for c in chunk {
                assert!(c.cut_edges <= c.total_edges);
                assert!(c.cut_fraction() <= 1.0);
            }
        }
        let rendered = render(&sweep(&ctx), &cuts);
        let text = rendered.lines.join("\n");
        assert!(text.contains("range") && text.contains("edgecut"), "{text}");
    }
}
