//! Fig. 10 — histogram of the unprocessed-edge counts (α) of the vertices
//! still awaiting aggregation after each Round (Pubmed).
//!
//! The paper's claim: the initial α distribution mirrors the power-law
//! degree distribution, and each Round flattens it — both the peak
//! frequency and the maximum α shrink — mitigating the power-law problem.

use gnnie_core::aggregation::{simulate_aggregation, AggregationParams};
use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_graph::reorder::Permutation;
use gnnie_graph::Dataset;
use gnnie_mem::HbmModel;

use crate::{Ctx, ExperimentResult, Table};

/// Regenerates Fig. 10.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let ds = ctx.dataset(Dataset::Pubmed);
    let cfg = AcceleratorConfig::paper(Dataset::Pubmed);
    let arr = CpeArray::new(&cfg);
    let graph = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
    let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
    let report = simulate_aggregation(
        &cfg,
        &arr,
        &graph,
        AggregationParams { f_out: 128, is_gat: false },
        &mut dram,
    );
    let cache = report.cache.as_ref().expect("cache policy enabled");

    let mut t =
        Table::new(&["round", "unfinished", "peak freq", "peak α bin", "p95 α", "max α"]);
    for (round, hist) in cache.alpha_histograms.iter().enumerate() {
        let (peak_bin, peak_count) = hist.peak();
        let max_bin = hist.last_nonempty_bin().unwrap_or(0);
        // 95th percentile from the histogram counts.
        let total = hist.total().max(1);
        let mut cum = 0u64;
        let mut p95_bin = 0usize;
        for (i, &c) in hist.counts().iter().enumerate() {
            cum += c;
            if cum * 100 >= 95 * total {
                p95_bin = i;
                break;
            }
        }
        t.row(vec![
            (round + 1).to_string(),
            hist.total().to_string(),
            peak_count.to_string(),
            format!("[{:.0},{:.0})", hist.bin_lo(peak_bin), hist.bin_hi(peak_bin)),
            format!("{:.0}", hist.bin_hi(p95_bin)),
            format!("{:.0}", hist.bin_hi(max_bin)),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(format!(
        "rounds: {}, iterations: {}, refetches: {} — paper: histogram grows flatter each \
         round (peak frequency and max α both decrease)",
        cache.rounds, cache.iterations, cache.refetches
    ));
    ExperimentResult { id: "Fig. 10", title: "α histogram through Rounds (Pubmed)", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_histograms_flatten() {
        let ctx = Ctx::with_scale(0.3);
        let r = run(&ctx);
        assert!(r.lines.len() > 3, "need at least one round: {:?}", r.lines);
    }

    #[test]
    fn max_alpha_never_grows_across_rounds() {
        let ctx = Ctx::with_scale(0.3);
        let ds = ctx.dataset(Dataset::Pubmed);
        let cfg = AcceleratorConfig::paper(Dataset::Pubmed);
        let arr = CpeArray::new(&cfg);
        let graph = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let report = simulate_aggregation(
            &cfg,
            &arr,
            &graph,
            AggregationParams { f_out: 128, is_gat: false },
            &mut dram,
        );
        let cache = report.cache.unwrap();
        let maxes: Vec<usize> =
            cache.alpha_histograms.iter().map(|h| h.last_nonempty_bin().unwrap_or(0)).collect();
        if maxes.len() >= 2 {
            assert!(
                maxes.last().unwrap() <= maxes.first().unwrap(),
                "max α should shrink: {maxes:?}"
            );
        }
    }
}
