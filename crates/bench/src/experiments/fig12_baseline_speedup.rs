//! Fig. 12 — GNNIE speedup over PyG-CPU (a) and PyG-GPU (b) for all five
//! models across all five datasets.
//!
//! The baselines are calibrated roofline models (see
//! `gnnie-baselines::calib`); absolute magnitudes are approximate by
//! construction, but the shape — GNNIE wins everywhere, the per-model
//! ordering, the CPU/GPU gap — is the reproduction target.

use gnnie_baselines::{PygCpuModel, PygGpuModel};
use gnnie_gnn::flops::ModelWorkload;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::table::fmt_ratio;
use crate::{Ctx, ExperimentResult, Table};

/// Paper Fig. 12a reported average speedups over PyG-CPU per model.
pub const PAPER_CPU_AVG: [(GnnModel, f64); 5] = [
    (GnnModel::Gcn, 18556.0),
    (GnnModel::Gat, 12120.0),
    (GnnModel::GraphSage, 1827.0),
    (GnnModel::GinConv, 72954.0),
    (GnnModel::DiffPool, 615.0),
];

/// Paper Fig. 12b reported average speedups over PyG-GPU per model.
pub const PAPER_GPU_AVG: [(GnnModel, f64); 5] = [
    (GnnModel::Gcn, 11.0),
    (GnnModel::Gat, 416.0),
    (GnnModel::GraphSage, 2427.0),
    (GnnModel::GinConv, 412.0),
    (GnnModel::DiffPool, 231.0),
];

/// Measured speedups of GNNIE over (CPU, GPU) for one model × dataset.
pub fn speedups(ctx: &Ctx, model: GnnModel, dataset: Dataset) -> (f64, f64) {
    let report = ctx.run_gnnie(model, dataset);
    let ds = ctx.dataset(dataset);
    let cfg = ctx.model_config(model, dataset);
    let w = ModelWorkload::for_dataset(&cfg, &ds);
    let cpu = PygCpuModel::new().run(&w);
    let gpu = PygGpuModel::new().run(&w);
    (cpu.latency_s / report.latency_s, gpu.latency_s / report.latency_s)
}

/// Regenerates Fig. 12 (both panels).
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["model", "dataset", "vs PyG-CPU", "vs PyG-GPU"]);
    let mut lines_extra = Vec::new();
    for model in GnnModel::ALL {
        let mut cpu_prod = 1.0f64;
        let mut gpu_prod = 1.0f64;
        let mut n = 0u32;
        for dataset in Dataset::ALL {
            let (cpu, gpu) = speedups(ctx, model, dataset);
            cpu_prod *= cpu;
            gpu_prod *= gpu;
            n += 1;
            t.row(vec![
                model.name().to_string(),
                dataset.abbrev().to_string(),
                fmt_ratio(cpu),
                fmt_ratio(gpu),
            ]);
        }
        // Geometric means, as ratios across datasets span decades.
        let cpu_avg = cpu_prod.powf(1.0 / n as f64);
        let gpu_avg = gpu_prod.powf(1.0 / n as f64);
        let paper_cpu = PAPER_CPU_AVG.iter().find(|(m, _)| *m == model).unwrap().1;
        let paper_gpu = PAPER_GPU_AVG.iter().find(|(m, _)| *m == model).unwrap().1;
        lines_extra.push(format!(
            "{:10} measured geo-mean: CPU {:>9} GPU {:>8}   paper (arith. mean): CPU {:>8} GPU {:>7}",
            model.name(),
            fmt_ratio(cpu_avg),
            fmt_ratio(gpu_avg),
            fmt_ratio(paper_cpu),
            fmt_ratio(paper_gpu),
        ));
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.extend(lines_extra);
    ExperimentResult {
        id: "Fig. 12",
        title: "GNNIE performance vs PyG-CPU (a) and PyG-GPU (b)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnnie_beats_both_baselines_on_small_datasets() {
        let ctx = Ctx::with_scale(0.1);
        for model in [GnnModel::Gcn, GnnModel::Gat] {
            let (cpu, gpu) = speedups(&ctx, model, Dataset::Cora);
            assert!(cpu > 1.0, "{model} CPU speedup {cpu}");
            assert!(gpu > 1.0, "{model} GPU speedup {gpu}");
            assert!(cpu > gpu, "{model}: CPU speedup must exceed GPU speedup");
        }
    }

    #[test]
    fn cpu_speedup_is_orders_of_magnitude() {
        let ctx = Ctx::with_scale(0.2);
        let (cpu, _) = speedups(&ctx, GnnModel::Gcn, Dataset::Pubmed);
        assert!(cpu > 50.0, "expected well over an order of magnitude, got {cpu}");
    }
}
