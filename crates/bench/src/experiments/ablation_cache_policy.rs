//! Cache-policy ablation — the paper's α/γ policy vs LRU, LFU, and the
//! offline Belady oracle, per Table II dataset.
//!
//! The paper's headline memory-system claim (§VI) is that the
//! degree-aware α/γ policy keeps *all* DRAM traffic sequential. This
//! sweep quantifies that claim against the classic comparators the
//! related caching studies use (Ginex's Belady-optimal in-memory cache,
//! DCI's workload-aware allocation): every policy drives the identical
//! [`CacheSim`](gnnie_mem::CacheSim) walk through the full Aggregation
//! cycle model, so evictions, refetches, and the sequential-vs-random
//! DRAM byte split are directly comparable.
//!
//! Expected shape: the paper policy issues **zero random fetch bytes**
//! and beats the realizable LRU/LFU comparators on DRAM cycles, while
//! the (unrealizable) Belady oracle performs the **fewest evictions** on
//! every dataset — it never evicts below capacity and surrenders only
//! the single furthest-needed vertex per iteration, bounding from below
//! what any replacement decision could achieve.
//!
//! The rendered table ends with a tier-split sweep (the
//! [`tiered_cache`](crate::experiments::tiered_cache) rows): the same
//! global capacity budget divided even vs workload-aware across the
//! on-chip → DRAM → SSD hierarchy, so the replacement-policy and
//! capacity-split ablations read side by side.

use gnnie_core::aggregation::{simulate_aggregation, AggregationParams};
use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_graph::reorder::Permutation;
use gnnie_graph::{CsrGraph, Dataset};
use gnnie_mem::cache::CacheSimResult;
use gnnie_mem::{CachePolicyKind, HbmModel};

use crate::table::fmt_count;
use crate::{Ctx, ExperimentResult, Table};

/// The degree-ordered DRAM placement of `dataset` (the shared schedule
/// every policy walks; compute once, run all policies over it).
pub fn ordered_graph(ctx: &Ctx, dataset: Dataset) -> CsrGraph {
    let ds = ctx.dataset(dataset);
    Permutation::descending_degree(&ds.graph).apply(&ds.graph)
}

/// Runs one policy over an already degree-ordered `graph` through the
/// Aggregation cycle model and returns the cache-walk result.
pub fn run_policy_on(
    graph: &CsrGraph,
    dataset: Dataset,
    kind: CachePolicyKind,
) -> CacheSimResult {
    let mut cfg = AcceleratorConfig::paper(dataset);
    cfg.cache_policy = kind;
    let arr = CpeArray::new(&cfg);
    let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
    let report = simulate_aggregation(
        &cfg,
        &arr,
        graph,
        AggregationParams { f_out: 128, is_gat: false },
        &mut dram,
    );
    let cache = report.cache.expect("cache policy enabled");
    assert!(cache.completed, "{kind} failed to complete on {dataset:?}");
    cache
}

/// The full sweep: policies × Table II datasets.
pub fn sweep(ctx: &Ctx) -> Vec<(Dataset, CachePolicyKind, CacheSimResult)> {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let graph = ordered_graph(ctx, dataset);
        for kind in CachePolicyKind::ALL {
            let result = run_policy_on(&graph, dataset, kind);
            rows.push((dataset, kind, result));
        }
    }
    rows
}

/// Regenerates the cache-policy ablation table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "policy",
        "rounds",
        "evictions",
        "refetches",
        "spills",
        "seq KB",
        "rand fetch B",
        "rand wb B",
        "DRAM cycles",
    ]);
    for (dataset, kind, r) in sweep(ctx) {
        let seq_kb = (r.counters.seq_read_bytes + r.counters.seq_write_bytes) / 1024;
        t.row(vec![
            dataset.abbrev().to_string(),
            kind.to_string(),
            r.rounds.to_string(),
            fmt_count(r.evictions),
            fmt_count(r.refetches),
            fmt_count(r.partial_spills),
            fmt_count(seq_kb),
            fmt_count(r.counters.rand_read_bytes),
            fmt_count(r.counters.rand_write_bytes),
            fmt_count(r.dram_cycles),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "paper §VI: dictionary-order eviction of nearly-done vertices keeps every \
         writeback and reload in stream order — the α/γ policy issues zero random \
         fetch bytes, unlike the realizable LRU/LFU comparators whose scattered \
         victim batches pay random transactions both ways; the offline Belady \
         oracle bounds evictions from below"
            .to_string(),
    );
    lines.push(String::new());
    lines.push(
        "tier-split sweep (one global budget = the paper input buffer, divided \
         across on-chip/DRAM/SSD):"
            .to_string(),
    );
    let mut s = Table::new(&["dataset", "split", "on-chip hit", "total cycles"]);
    for r in crate::experiments::tiered_cache::sweep(ctx) {
        s.row(vec![
            r.dataset.abbrev().to_string(),
            r.mode.name().to_string(),
            format!("{:.1}%", r.onchip_hit_rate * 100.0),
            r.total_cycles.to_string(),
        ]);
    }
    lines.extend(s.render());
    ExperimentResult {
        id: "Ablation CP",
        title: "Cache replacement policy (α/γ vs LRU/LFU/Belady)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_issues_zero_random_fetch_bytes_and_belady_fewest_evictions() {
        let ctx = Ctx::with_scale(0.2);
        for dataset in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed] {
            let graph = ordered_graph(&ctx, dataset);
            let paper = run_policy_on(&graph, dataset, CachePolicyKind::Paper);
            assert_eq!(paper.counters.rand_read_bytes, 0, "{dataset:?}");
            assert_eq!(paper.counters.random_bytes(), 0, "{dataset:?}");
            let belady = run_policy_on(&graph, dataset, CachePolicyKind::Belady);
            for (kind, other) in [
                (CachePolicyKind::Paper, paper),
                (CachePolicyKind::Lru, run_policy_on(&graph, dataset, CachePolicyKind::Lru)),
                (CachePolicyKind::Lfu, run_policy_on(&graph, dataset, CachePolicyKind::Lfu)),
            ] {
                assert!(
                    belady.evictions <= other.evictions,
                    "{dataset:?}: belady {} vs {kind} {}",
                    belady.evictions,
                    other.evictions
                );
            }
        }
    }
}
