//! Design-space exploration: how the paper's flexible-MAC configuration
//! was (plausibly) chosen.
//!
//! §VIII-A: "The number of MACs per CPE was chosen through design space
//! exploration, optimizing the cost-to-benefit ratio (speedup gain :
//! hardware overhead)." This sweep enumerates every monotone three-group
//! row configuration with 3–7 MACs per CPE, evaluates Weighting cycles
//! under FM on the citation datasets, and ranks by the paper's β metric
//! (Eq. 9) against the uniform 4-MAC baseline — showing where 4/5/6 with
//! an 8/4/4 row split lands.

use gnnie_core::config::{AcceleratorConfig, Design, RowGroup};
use gnnie_core::cpe::CpeArray;
use gnnie_core::weighting::{
    simulate_weighting_mode, BlockProfile, WeightingMode, WeightingParams,
};
use gnnie_graph::Dataset;
use gnnie_mem::HbmModel;

use crate::{Ctx, ExperimentResult, Table};

/// A candidate point: three row groups over 16 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsePoint {
    /// Rows per group (sums to 16).
    pub rows: [usize; 3],
    /// MACs per CPE per group (nondecreasing).
    pub macs: [usize; 3],
}

impl DsePoint {
    /// The paper's chosen configuration.
    pub const PAPER: DsePoint = DsePoint { rows: [8, 4, 4], macs: [4, 5, 6] };

    /// Builds the accelerator configuration for this point.
    pub fn config(&self) -> AcceleratorConfig {
        let mut cfg = AcceleratorConfig::with_design(Design::E, 256 * 1024);
        cfg.row_groups = (0..3)
            .map(|i| RowGroup { rows: self.rows[i], macs_per_cpe: self.macs[i] })
            .collect();
        cfg
    }

    /// Total MAC count.
    pub fn total_macs(&self) -> usize {
        (0..3).map(|i| self.rows[i] * self.macs[i] * 16).sum()
    }
}

impl std::fmt::Display for DsePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} {}x{} {}x{}",
            self.rows[0], self.macs[0], self.rows[1], self.macs[1], self.rows[2], self.macs[2]
        )
    }
}

/// Enumerates the candidate space: row splits of 16 into three nonempty
/// groups (multiples of 4, as banked hardware would) and nondecreasing
/// MAC triples from 3–7.
pub fn candidates() -> Vec<DsePoint> {
    let mut out = Vec::new();
    for r0 in [4usize, 8] {
        for r1 in [4usize, 8] {
            let Some(r2) = 16usize.checked_sub(r0 + r1).filter(|&r| r >= 4) else {
                continue;
            };
            for m0 in 3..=7usize {
                for m1 in m0..=7 {
                    for m2 in m1..=7 {
                        if m0 == m2 {
                            continue; // uniform points are Designs A–D
                        }
                        out.push(DsePoint { rows: [r0, r1, r2], macs: [m0, m1, m2] });
                    }
                }
            }
        }
    }
    out
}

/// Weighting compute cycles for a point on a dataset (FM schedule).
pub fn cycles(ctx: &Ctx, dataset: Dataset, point: &DsePoint) -> u64 {
    let ds = ctx.dataset(dataset);
    let cfg = point.config();
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
    simulate_weighting_mode(
        &cfg,
        &arr,
        &profile,
        WeightingParams::default(),
        WeightingMode::Fm,
        &mut dram,
    )
    .compute_cycles
}

/// β of a point against the uniform 4-MAC baseline, averaged over the
/// three citation datasets.
pub fn mean_beta(ctx: &Ctx, point: &DsePoint) -> f64 {
    let base_cfg = AcceleratorConfig::with_design(Design::A, 256 * 1024);
    let base_macs = base_cfg.total_macs() as f64;
    let mut sum = 0.0;
    let datasets = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];
    for &dataset in &datasets {
        let ds = ctx.dataset(dataset);
        let arr = CpeArray::new(&base_cfg);
        let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
        let mut dram = HbmModel::hbm2_256gbps(base_cfg.clock_hz);
        let base = simulate_weighting_mode(
            &base_cfg,
            &arr,
            &profile,
            WeightingParams::default(),
            WeightingMode::Baseline,
            &mut dram,
        )
        .compute_cycles as f64;
        let point_cycles = cycles(ctx, dataset, point) as f64;
        let dm = point.total_macs() as f64 - base_macs;
        if dm > 0.0 {
            sum += (base - point_cycles) / dm;
        }
    }
    sum / datasets.len() as f64
}

/// Regenerates the DSE ranking (top 10 by mean β).
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut scored: Vec<(DsePoint, f64)> =
        candidates().into_iter().map(|p| (p, mean_beta(ctx, &p))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("β is finite"));
    let paper_rank =
        scored.iter().position(|(p, _)| *p == DsePoint::PAPER).map(|i| i + 1).unwrap_or(0);

    let mut t = Table::new(&["rank", "rows x MACs", "total MACs", "mean β", ""]);
    for (i, (point, beta)) in scored.iter().take(10).enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            point.to_string(),
            point.total_macs().to_string(),
            format!("{beta:.2}"),
            if *point == DsePoint::PAPER { "<- paper's choice".into() } else { String::new() },
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(format!(
        "candidates evaluated: {}; the paper's 8x4 4x5 4x6 ranks #{paper_rank} by mean β \
         over CR/CS/PB (β = cycle reduction per added MAC vs the uniform 4-MAC baseline)",
        scored.len()
    ));
    lines.push(
        "note: β-per-added-MAC inherently favors lean additions; the paper's point \
         trades some β for more absolute speedup at a still-modest 1216 MACs"
            .to_string(),
    );
    ExperimentResult {
        id: "DSE",
        title: "Design-space exploration of the flexible-MAC configuration",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_is_valid() {
        let all = candidates();
        assert!(all.len() > 20, "space too small: {}", all.len());
        assert!(all.contains(&DsePoint::PAPER), "paper's point must be in the space");
        for p in &all {
            assert_eq!(p.rows.iter().sum::<usize>(), 16);
            assert!(p.macs.windows(2).all(|w| w[0] <= w[1]));
            p.config().validate();
        }
    }

    #[test]
    fn papers_point_scores_well() {
        let ctx = Ctx::with_scale(0.25);
        let paper_beta = mean_beta(&ctx, &DsePoint::PAPER);
        assert!(paper_beta > 0.0, "paper's design must improve on the baseline");
        // It need not win outright, but it must land in the upper half.
        let mut scored: Vec<f64> = candidates().iter().map(|p| mean_beta(&ctx, p)).collect();
        scored.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let rank = scored.iter().position(|&b| b <= paper_beta).unwrap_or(0);
        assert!(rank <= scored.len() / 2, "paper's point ranks {rank} of {}", scored.len());
    }

    #[test]
    fn more_macs_cost_beta() {
        let ctx = Ctx::with_scale(0.25);
        let lean = DsePoint { rows: [8, 4, 4], macs: [4, 5, 6] };
        let heavy = DsePoint { rows: [4, 4, 8], macs: [5, 6, 7] };
        // The heavier point has more MACs; β (gain per MAC) should not
        // beat the lean one by much — diminishing returns on sparsity.
        let lean_beta = mean_beta(&ctx, &lean);
        let heavy_beta = mean_beta(&ctx, &heavy);
        assert!(heavy_beta < lean_beta * 1.5, "lean {lean_beta} vs heavy {heavy_beta}");
    }
}
