//! One module per table/figure of the paper's evaluation (§VIII), plus
//! the Fig. 1 background chart. Each module's `run` regenerates the
//! artifact and returns printable rows with the paper's reported values
//! alongside the measured ones.

pub mod ablation_attention;
pub mod ablation_buffers;
pub mod ablation_cache_policy;
pub mod ablation_comm;
pub mod ablation_lut;
pub mod ablation_multihead;
pub mod ablation_psum;
pub mod ablation_psum_policy;
pub mod ablation_quant;
pub mod dse;
pub mod fig01_accuracy;
pub mod fig02_feature_sparsity;
pub mod fig10_alpha_rounds;
pub mod fig11_gamma_ablation;
pub mod fig12_baseline_speedup;
pub mod fig13_cross_platform;
pub mod fig14_energy_breakdown;
pub mod fig15_energy_efficiency;
pub mod fig16_weighting_balance;
pub mod fig17_beta_designs;
pub mod fig18_optimizations;
pub mod ingest_throughput;
pub mod online_serving;
pub mod parallel_speedup;
pub mod scaleout;
pub mod serving_throughput;
pub mod table2_datasets;
pub mod table3_configs;
pub mod table4_scaling;
pub mod table4_throughput;
pub mod tiered_cache;
