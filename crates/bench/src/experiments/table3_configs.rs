//! Table III — convolution layer configurations per model.

use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::{Ctx, ExperimentResult, Table};

/// Regenerates Table III (instantiated for each dataset's feature length).
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["model", "weighting", "aggregation", "sample size"]);
    let spec = ctx.dataset(Dataset::Cora).spec;
    for model in GnnModel::ALL {
        let cfg = ctx.model_config(model, Dataset::Cora);
        let weighting = match model {
            GnnModel::GinConv => format!("len[h] -> {} / {}", cfg.hidden, cfg.hidden),
            _ => format!("len[h] -> {}", cfg.hidden),
        };
        let aggregation = match model {
            GnnModel::GraphSage => "Max".to_string(),
            _ => "Sum".to_string(),
        };
        let sample = cfg.sample_size.map(|s| s.to_string()).unwrap_or_else(|| "--".to_string());
        t.row(vec![model.name().to_string(), weighting, aggregation, sample]);
    }
    let mut lines = t.render();
    lines.push(format!(
        "(len[h] = dataset feature length, e.g. {} for Cora; hidden width 128 throughout; \
         DiffPool pairs a GCN-pool and GCN-embedding stack)",
        spec.feature_len
    ));
    ExperimentResult { id: "Table III", title: "Convolution layer configurations", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_five_models() {
        let r = run(&Ctx::with_scale(0.05));
        let body = r.lines.join("\n");
        for model in GnnModel::ALL {
            assert!(body.contains(model.name()), "{model} missing");
        }
        assert!(body.contains("Max"), "GraphSAGE aggregator");
        assert!(body.contains("25"), "sample size");
    }
}
