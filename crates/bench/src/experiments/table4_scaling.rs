//! Table IV extension — throughput vs. graph scale.
//!
//! The table's accompanying claim is that throughput "degrades only
//! moderately as the graph size is increased". The three citation
//! datasets span only a 7× vertex range; this sweep runs GCN on one
//! dataset family (Pubmed statistics) across a 50× scale ramp and on the
//! two large datasets, reporting effective TOPS and the slowdown relative
//! to the smallest point — making the degradation curve explicit.

use gnnie_core::report::InferenceReport;
use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_graph::{Dataset, SyntheticDataset};

use crate::{table::fmt_count, Ctx, ExperimentResult, Table};

/// Scale points for the Pubmed-statistics ramp.
pub const SCALE_RAMP: [f64; 4] = [0.02, 0.1, 0.5, 1.0];

/// Runs GCN on Pubmed statistics at `scale`.
pub fn run_at_scale(ctx: &Ctx, scale: f64) -> InferenceReport {
    let ds = SyntheticDataset::generate(Dataset::Pubmed, scale, ctx.seed());
    let cfg = gnnie_core::config::AcceleratorConfig::paper(Dataset::Pubmed);
    gnnie_core::engine::Engine::new(cfg).run(&ModelConfig::paper(GnnModel::Gcn, &ds.spec), &ds)
}

/// Regenerates the scaling table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["workload", "|V|", "|E|", "eff. TOPS", "TOPS vs smallest"]);
    let mut base_tops = None;
    for &scale in &SCALE_RAMP {
        let r = run_at_scale(ctx, scale);
        let tops = r.effective_tops();
        let base = *base_tops.get_or_insert(tops);
        t.row(vec![
            format!("PB x{scale}"),
            fmt_count(r.vertices),
            fmt_count(r.edges),
            format!("{tops:.2}"),
            format!("{:.2}x", tops / base),
        ]);
    }
    // The two large datasets at the harness scales.
    for dataset in [Dataset::Ppi, Dataset::Reddit] {
        let r = ctx.run_gnnie(GnnModel::Gcn, dataset);
        let base = base_tops.unwrap_or(1.0);
        t.row(vec![
            format!("{dataset:?} (harness scale)"),
            fmt_count(r.vertices),
            fmt_count(r.edges),
            format!("{:.2}", r.effective_tops()),
            format!("{:.2}x", r.effective_tops() / base),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "across a 50x vertex ramp the effective throughput moves by well \
         under an order of magnitude — the degree-aware cache keeps DRAM \
         sequential so bigger graphs add Rounds, not random stalls \
         (Table IV's 'degrades only moderately', extended)"
            .to_string(),
    );
    ExperimentResult { id: "Table IV-b", title: "Throughput vs graph scale (extension)", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_moderate_across_the_ramp() {
        let ctx = Ctx::from_env();
        let small = run_at_scale(&ctx, 0.02).effective_tops();
        let large = run_at_scale(&ctx, 0.5).effective_tops();
        assert!(small > 0.0 && large > 0.0);
        // "Moderate": a 25x size increase may not cost an order of
        // magnitude of throughput.
        let ratio = small.max(large) / small.min(large);
        assert!(ratio < 10.0, "throughput moved {ratio:.1}x across the ramp");
    }

    #[test]
    fn table_has_ramp_and_large_dataset_rows() {
        let ctx = Ctx::with_scale(0.05);
        let r = run(&ctx);
        assert!(r.lines.iter().any(|l| l.contains("PB x")));
        assert!(r.lines.iter().any(|l| l.contains("Reddit")));
    }
}
