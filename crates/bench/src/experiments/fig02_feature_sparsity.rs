//! Fig. 2 — nonzero histogram of the input vertex feature vectors (Cora).
//!
//! The paper's figure shows a bimodal distribution: a sparse Region A and
//! a denser Region B, which is exactly the imbalance the FM architecture
//! targets. The synthetic Cora features reproduce the bimodal profile.

use gnnie_graph::features::nonzero_histogram;
use gnnie_graph::Dataset;

use crate::{Ctx, ExperimentResult, Table};

/// Histogram bins used for the figure.
pub const BINS: usize = 30;

/// Regenerates Fig. 2.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let ds = ctx.dataset(Dataset::Cora);
    let hist = nonzero_histogram(&ds.features, BINS);
    let peak = hist.peak();
    let mut t = Table::new(&["nnz range", "vertices", ""]);
    let max_count = hist.counts().iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in hist.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = "#".repeat(((c * 40) / max_count) as usize);
        t.row(vec![
            format!("{:>4.0}-{:<4.0}", hist.bin_lo(i), hist.bin_hi(i)),
            c.to_string(),
            bar,
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(format!(
        "mean nnz per vertex: {:.1} of {} features ({:.2}% sparsity; paper: 98.73%)",
        ds.features.nnz() as f64 / ds.graph.num_vertices() as f64,
        ds.spec.feature_len,
        ds.features.sparsity() * 100.0
    ));
    lines.push(format!("peak bin: [{:.0}, {:.0})", hist.bin_lo(peak.0), hist.bin_hi(peak.0)));
    ExperimentResult {
        id: "Fig. 2",
        title: "Nonzero histogram for input vertex feature vectors (Cora)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_histogram_is_bimodal() {
        let ctx = Ctx::with_scale(1.0);
        let ds = ctx.dataset(Dataset::Cora);
        let hist = nonzero_histogram(&ds.features, BINS);
        // Bimodality: at least two local maxima separated by a valley at
        // under half the smaller peak.
        let counts = hist.counts();
        let peaks: Vec<usize> = (1..counts.len() - 1)
            .filter(|&i| {
                counts[i] > counts[i - 1] && counts[i] >= counts[i + 1] && counts[i] > 10
            })
            .collect();
        assert!(
            peaks.len() >= 2,
            "expected a bimodal histogram (regions A and B), got peaks {peaks:?} in {counts:?}"
        );
    }

    #[test]
    fn run_emits_summary_lines() {
        let r = run(&Ctx::with_scale(0.5));
        assert!(r.lines.iter().any(|l| l.contains("sparsity")));
        assert!(r.lines.iter().any(|l| l.contains("peak bin")));
    }
}
