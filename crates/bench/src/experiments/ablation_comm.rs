//! Ablation — inter-PE communication of load-balancing schemes (§VII).
//!
//! The paper's related-work section claims GNNIE's load balancing has
//! "low inter-PE communication, low control overhead" where AWB-GCN's
//! multi-round runtime rebalancing and EnGN's ring-edge-reduce broadcast
//! are communication-heavy. This ablation puts numbers behind that claim
//! with a common interconnect currency (word-hops over identical links,
//! `gnnie_core::noc`), split by phase so the two contrasts stay visible:
//!
//! * **Rebalancing (Weighting)**: GNNIE's one-shot LR offload (bus) vs an
//!   AWB-style iterative rebalance of the same imbalanced per-row load
//!   (multistage network, rounds until smooth).
//! * **Aggregation dataflow**: GNNIE's one-hop partial-to-MPE placement
//!   vs an EnGN-style column-ring circulation of every partial.

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_core::noc::{
    awb_rebalance_traffic, gnnie_aggregation_traffic, lr_traffic, rer_traffic,
    AwbRebalanceParams, CommLedger, LinkParams,
};
use gnnie_core::weighting::{schedule, BlockProfile, WeightingMode};
use gnnie_graph::Dataset;

use crate::{table::fmt_count, table::fmt_ratio, Ctx, ExperimentResult, Table};

/// Datasets swept (the citation graphs, as in Figs. 16–18).
pub const DATASETS: [Dataset; 3] = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];

/// Rebalancing-side traffic for one dataset: `(gnnie_lr, awb)`.
///
/// Both schemes start from the same workload; GNNIE offloads once after
/// FM, the AWB model iterates on the unbalanced baseline row loads (it
/// has no FM stage to lean on).
pub fn rebalance_comm(ctx: &Ctx, dataset: Dataset) -> (CommLedger, CommLedger) {
    let ds = ctx.dataset(dataset);
    let cfg = AcceleratorConfig::paper(dataset);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    let lr_sched = schedule(&profile, &arr, WeightingMode::FmLr);
    let gnnie = lr_traffic(&lr_sched, profile.k());
    let base_loads = schedule(&profile, &arr, WeightingMode::Baseline).per_row_cycles(&arr);
    let (awb, _) = awb_rebalance_traffic(&base_loads, AwbRebalanceParams::default());
    (gnnie, awb)
}

/// Aggregation-side traffic for one dataset: `(gnnie_bus, engn_rer)`.
///
/// Every undirected edge updates both endpoints with an `F_out = 128`
/// partial (Table III); the two dataflows move identical payloads across
/// different distances.
pub fn aggregation_comm(ctx: &Ctx, dataset: Dataset) -> (CommLedger, CommLedger) {
    let ds = ctx.dataset(dataset);
    let cfg = AcceleratorConfig::paper(dataset);
    let arr = CpeArray::new(&cfg);
    let edge_updates = 2 * ds.graph.num_edges() as u64;
    (gnnie_aggregation_traffic(edge_updates, 128), rer_traffic(edge_updates, 128, arr.cols()))
}

/// Regenerates the ablation tables.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let link = LinkParams::default();
    let mut lines = Vec::new();

    lines.push("-- rebalancing traffic during Weighting --".to_string());
    let mut t = Table::new(&[
        "dataset",
        "scheme",
        "payload words",
        "word-hops",
        "rounds",
        "ctrl msgs",
        "energy (nJ)",
    ]);
    for dataset in DATASETS {
        let (gnnie, awb) = rebalance_comm(ctx, dataset);
        for (name, ledger) in [("GNNIE FM+LR", &gnnie), ("AWB-style rebalance", &awb)] {
            t.row(vec![
                format!("{dataset:?}"),
                name.to_string(),
                fmt_count(ledger.words),
                fmt_count(ledger.word_hops),
                ledger.rounds.to_string(),
                fmt_count(ledger.control_msgs),
                format!("{:.2}", ledger.energy_pj(&link) / 1e3),
            ]);
        }
    }
    lines.extend(t.render());
    lines.push(String::new());

    lines.push("-- aggregation dataflow traffic --".to_string());
    let mut t = Table::new(&[
        "dataset",
        "scheme",
        "payload words",
        "word-hops",
        "xfer cycles",
        "energy (nJ)",
        "hops vs GNNIE",
    ]);
    for dataset in DATASETS {
        let (bus, rer) = aggregation_comm(ctx, dataset);
        for (name, ledger) in [("GNNIE column bus", &bus), ("EnGN-style RER", &rer)] {
            t.row(vec![
                format!("{dataset:?}"),
                name.to_string(),
                fmt_count(ledger.words),
                fmt_count(ledger.word_hops),
                fmt_count(ledger.cycles(&link)),
                format!("{:.1}", ledger.energy_pj(&link) / 1e3),
                fmt_ratio(ledger.word_hops as f64 / bus.word_hops.max(1) as f64),
            ]);
        }
    }
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "GNNIE's one-shot LR offload moves only the weights of the offloaded \
         blocks, one bus hop each, with one control message per row pair; the \
         AWB-style runtime rebalance re-routes operands across log2(P) switch \
         stages round after round and rebroadcasts routing state to all 256 \
         PEs every round. On the aggregation side the ring-edge-reduce \
         dataflow multiplies every partial's distance by the ring diameter — \
         the 'high inter-PE communication' §VII attributes to both \
         alternatives"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A5",
        title: "Inter-PE communication of load-balancing schemes (§VII)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnnie_rebalance_never_exceeds_awb() {
        let ctx = Ctx::with_scale(0.2);
        for dataset in DATASETS {
            let (gnnie, awb) = rebalance_comm(&ctx, dataset);
            assert!(
                gnnie.word_hops <= awb.word_hops,
                "{dataset:?}: GNNIE {} vs AWB {}",
                gnnie.word_hops,
                awb.word_hops
            );
            assert!(gnnie.rounds <= 1, "LR decides at most once per pass");
            assert!(
                gnnie.control_msgs <= 8,
                "at most one control message per heavy/light pair"
            );
        }
    }

    #[test]
    fn rer_is_ring_diameter_times_bus() {
        let ctx = Ctx::with_scale(0.2);
        for dataset in DATASETS {
            let (bus, rer) = aggregation_comm(&ctx, dataset);
            assert_eq!(rer.words, bus.words, "same payload");
            assert_eq!(rer.word_hops, 15 * bus.word_hops, "{dataset:?}");
        }
    }

    #[test]
    fn awb_pays_control_broadcasts_per_round() {
        let ctx = Ctx::with_scale(0.3);
        // Pubmed's wide feature-sparsity spread (Fig. 2 profile) leaves the
        // baseline rows imbalanced enough to need at least one round.
        let (_, awb) = rebalance_comm(&ctx, Dataset::Pubmed);
        assert!(awb.rounds >= 1);
        assert_eq!(awb.control_msgs, awb.rounds * 16, "one broadcast per row PE per round");
    }

    #[test]
    fn table_renders_both_sections() {
        let ctx = Ctx::with_scale(0.1);
        let r = run(&ctx);
        assert!(r.lines.iter().any(|l| l.contains("rebalancing traffic")));
        assert!(r.lines.iter().any(|l| l.contains("aggregation dataflow")));
        assert!(r.lines.iter().any(|l| l.contains("EnGN-style RER")));
    }
}
