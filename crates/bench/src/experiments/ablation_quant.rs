//! Ablation — 8-bit weight quantization: the paper sizes the weight
//! buffer "for a 1-byte weight" (§VIII-A) without quantifying the
//! accuracy cost. This sweep measures GCN output error and DRAM weight
//! traffic with quantized vs f32 weights, justifying the engine's 1-byte
//! weight-traffic assumption.

use gnnie_gnn::layers::aggregate_gcn;
use gnnie_gnn::params::glorot;
use gnnie_graph::generate;
use gnnie_tensor::quant::QuantizedMatrix;
use gnnie_tensor::DenseMatrix;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Ctx, ExperimentResult, Table};

/// `(max relative output error, f32 weight bytes, quantized bytes)` for a
/// GCN layer of shape `f_in × f_out`.
pub fn quant_impact(f_in: usize, f_out: usize, seed: u64) -> (f32, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = glorot(&mut rng, f_in, f_out);
    let q = QuantizedMatrix::quantize(&w);
    let g = generate::powerlaw_chung_lu(120, 700, 2.0, seed);
    let h = DenseMatrix::from_fn(120, f_in, |r, c| (((r * 11 + c * 3) % 9) as f32 - 4.0) * 0.2);
    let exact = aggregate_gcn(&g, &h.matmul(&w).expect("shapes agree"));
    let approx = aggregate_gcn(&g, &h.matmul(&q.dequantize()).expect("shapes agree"));
    let scale = exact.as_slice().iter().fold(1e-12f32, |m, &x| m.max(x.abs()));
    let err = exact.max_abs_diff(&approx) / scale;
    ((err), (f_in * f_out * 4) as u64, q.storage_bytes() as u64)
}

/// Regenerates the ablation table.
pub fn run(_ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "layer shape",
        "f32 bytes",
        "int8 bytes",
        "traffic saved",
        "max rel. output error",
    ]);
    for (f_in, f_out) in [(64usize, 32usize), (256, 128), (1433, 128)] {
        let (err, full, quant) = quant_impact(f_in, f_out, 11);
        t.row(vec![
            format!("{f_in}x{f_out}"),
            full.to_string(),
            quant.to_string(),
            format!("{:.1}x", full as f64 / quant as f64),
            format!("{err:.2e}"),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "8-bit weights cut weight traffic ~4x at sub-percent GCN output error — the \
         basis for the paper's 128 KB weight-buffer sizing and this engine's 1-byte \
         weight-traffic model"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A3",
        title: "Weight quantization: traffic vs accuracy",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_saves_4x_at_small_error() {
        let (err, full, quant) = quant_impact(128, 64, 3);
        assert!(full >= 4 * quant - 8, "int8 must cut traffic ~4x: {full} vs {quant}");
        assert!(err < 0.02, "int8 GCN output error too high: {err}");
    }

    #[test]
    fn bigger_layers_stay_accurate() {
        let (err, _, _) = quant_impact(1433, 128, 5);
        assert!(err < 0.02, "error {err}");
    }
}
