//! Table IV — throughput (TOPS): the configuration peak and the
//! effective throughput on Cora, Citeseer, and Pubmed.
//!
//! Paper values: peak 3.17 TOPS; CR 2.88, CS 2.69, PB 2.57 — throughput
//! "degrades only moderately as graph size increases".

use gnnie_core::config::AcceleratorConfig;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::{Ctx, ExperimentResult, Table};

/// Paper-reported throughput rows.
pub const PAPER_TOPS: [(&str, f64); 4] =
    [("Peak", 3.17), ("CR", 2.88), ("CS", 2.69), ("PB", 2.57)];

/// Regenerates Table IV.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let peak = AcceleratorConfig::paper(Dataset::Cora).peak_tops();
    let mut t = Table::new(&["", "measured TOPS", "paper TOPS"]);
    t.row(vec!["Peak".into(), format!("{peak:.2}"), format!("{:.2}", PAPER_TOPS[0].1)]);
    for (i, dataset) in
        [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed].into_iter().enumerate()
    {
        let r = ctx.run_gnnie(GnnModel::Gcn, dataset);
        t.row(vec![
            dataset.abbrev().to_string(),
            format!("{:.2}", r.effective_tops()),
            format!("{:.2}", PAPER_TOPS[i + 1].1),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "note: measured TOPS counts zero-skipped (issued) operations over end-to-end \
         latency; the paper's throughput similarly degrades only moderately with \
         graph size"
            .to_string(),
    );
    ExperimentResult { id: "Table IV", title: "Throughput for various datasets", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_paper() {
        let peak = AcceleratorConfig::paper(Dataset::Cora).peak_tops();
        assert!((peak - 3.17).abs() < 0.05, "peak {peak}");
    }

    #[test]
    fn effective_tops_below_peak_and_positive() {
        let ctx = Ctx::with_scale(0.2);
        let peak = AcceleratorConfig::paper(Dataset::Cora).peak_tops();
        let r = ctx.run_gnnie(GnnModel::Gcn, Dataset::Cora);
        assert!(r.effective_tops() > 0.0);
        assert!(r.effective_tops() <= peak);
    }
}
