//! Serving-throughput sweep — batched + pipelined serving vs the serial
//! `Engine::run` loop, over batch size × scheduler policy.
//!
//! The serving subsystem (`gnnie-serve`) claims two wins over running
//! requests one at a time: model-homogeneous batches stream layer
//! weights once per batch instead of once per request, and consecutive
//! batches pipeline — batch *i+1* occupies the Weighting resource while
//! batch *i* aggregates. This sweep records both as numbers, on two
//! mixes:
//!
//! * **same-model** — 16 GCN/Cora requests (distinct seeds): the pure
//!   amortization case every batch size benefits from;
//! * **interleaved** — GCN/GAT alternating over Cora and Citeseer: the
//!   adversarial arrival order where FIFO degenerates to singleton
//!   batches (weight loads amortize nowhere) while model-affinity
//!   regroups and keeps the savings.
//!
//! Expected shape: batched + pipelined serving beats the serial loop on
//! total cycles everywhere (the pipeline never loses by construction);
//! weight-load savings grow with batch size; and the FIFO-vs-affinity
//! gap opens only on the interleaved mix.

use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;
use gnnie_serve::{InferenceRequest, SchedulerPolicy, ServeConfig, ServeReport, Server};

use crate::table::fmt_count;
use crate::{Ctx, ExperimentResult, Table};

/// Serving sweeps cap the synthesis scale: request mixes multiply the
/// per-run cost, and the batching/pipelining trends are scale-stable.
const MAX_SERVE_SCALE: f64 = 0.25;

/// One sweep configuration's outcome.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Mix label ("same-model" / "interleaved").
    pub mix: &'static str,
    /// Scheduler policy.
    pub policy: SchedulerPolicy,
    /// Batch-size cap.
    pub max_batch: usize,
    /// The full serving record.
    pub report: ServeReport,
}

fn serve_scale(ctx: &Ctx, dataset: Dataset) -> f64 {
    ctx.scale_for(dataset).min(MAX_SERVE_SCALE)
}

/// The 16-request same-model mix (GCN on Cora, distinct seeds).
pub fn same_model_mix(ctx: &Ctx, n: usize) -> Vec<InferenceRequest> {
    (0..n)
        .map(|i| {
            InferenceRequest::new(
                i as u64,
                GnnModel::Gcn,
                Dataset::Cora,
                serve_scale(ctx, Dataset::Cora),
                ctx.seed() ^ (i as u64),
            )
        })
        .collect()
}

/// The adversarial interleaved mix: model alternates every request,
/// dataset every other, so FIFO never sees two compatible neighbors.
pub fn interleaved_mix(ctx: &Ctx, n: usize) -> Vec<InferenceRequest> {
    let models = [GnnModel::Gcn, GnnModel::Gat];
    let datasets = [Dataset::Cora, Dataset::Citeseer];
    (0..n)
        .map(|i| {
            let dataset = datasets[(i / models.len()) % datasets.len()];
            InferenceRequest::new(
                i as u64,
                models[i % models.len()],
                dataset,
                serve_scale(ctx, dataset),
                ctx.seed() ^ (i as u64),
            )
        })
        .collect()
}

/// Runs one configuration.
pub fn run_config(
    queue: &[InferenceRequest],
    policy: SchedulerPolicy,
    max_batch: usize,
) -> ServeReport {
    Server::new(ServeConfig { policy, max_batch, workers: 4, ..ServeConfig::default() })
        .run(queue)
}

/// The full sweep: batch sizes × policies on both mixes.
pub fn sweep(ctx: &Ctx) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    let same = same_model_mix(ctx, 16);
    let inter = interleaved_mix(ctx, 16);
    for &(mix, queue) in &[("same-model", &same), ("interleaved", &inter)] {
        for policy in SchedulerPolicy::ALL {
            for max_batch in [1usize, 2, 4, 8] {
                let report = run_config(queue, policy, max_batch);
                rows.push(SweepRow { mix, policy, max_batch, report });
            }
        }
    }
    rows
}

/// Regenerates the serving-throughput table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    render(&sweep(ctx))
}

/// Renders an already-computed sweep (the `serving_throughput` bin
/// reuses one sweep for both the table and its JSON artifact).
pub fn render(rows: &[SweepRow]) -> ExperimentResult {
    let mut t = Table::new(&[
        "mix",
        "policy",
        "batch",
        "batches",
        "pipelined cyc",
        "serial cyc",
        "speedup",
        "wload saved",
        "p50 us",
        "p95 us",
        "inf/s",
    ]);
    for row in rows {
        let r = &row.report;
        t.row(vec![
            row.mix.to_string(),
            row.policy.to_string(),
            row.max_batch.to_string(),
            r.batches.len().to_string(),
            fmt_count(r.pipelined_total_cycles),
            fmt_count(r.serial_total_cycles),
            format!("{:.2}x", r.speedup_vs_serial()),
            fmt_count(r.weight_load_cycles_saved),
            format!("{:.1}", r.p50_latency_s() * 1e6),
            format!("{:.1}", r.p95_latency_s() * 1e6),
            format!("{:.0}", r.throughput_inferences_per_s()),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "batched + pipelined serving never loses to the serial Engine::run loop; \
         weight-load savings grow with batch size, and the FIFO-vs-affinity gap \
         opens only on the interleaved arrival order (DGI/DCI-style cross-request \
         scheduling)"
            .to_string(),
    );
    ExperimentResult {
        id: "Serving",
        title: "Batched + pipelined serving throughput (gnnie-serve)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_pipelined_beats_serial_on_the_same_model_mix() {
        // The PR's acceptance criterion: a ≥ 8-request same-model mix,
        // batched + pipelined vs serial Engine::run loops, with the
        // weight-load savings reported explicitly.
        let ctx = Ctx::with_scale(0.1);
        let queue = same_model_mix(&ctx, 8);
        let report = run_config(&queue, SchedulerPolicy::ModelAffinity, 8);
        assert_eq!(report.batches.len(), 1);
        assert!(
            report.pipelined_total_cycles < report.serial_total_cycles,
            "batched+pipelined {} must beat serial {}",
            report.pipelined_total_cycles,
            report.serial_total_cycles
        );
        assert!(report.weight_load_cycles_saved > 0, "7 followers skip weight loads");
    }

    #[test]
    fn affinity_beats_fifo_only_on_the_interleaved_mix() {
        let ctx = Ctx::with_scale(0.1);
        let inter = interleaved_mix(&ctx, 8);
        let fifo = run_config(&inter, SchedulerPolicy::Fifo, 4);
        let aff = run_config(&inter, SchedulerPolicy::ModelAffinity, 4);
        // FIFO sees no two compatible neighbors: nothing amortizes.
        assert_eq!(fifo.weight_load_cycles_saved, 0);
        assert!(aff.weight_load_cycles_saved > 0);
        assert!(aff.pipelined_total_cycles < fifo.pipelined_total_cycles);
        // On the same-model mix the policies coincide.
        let same = same_model_mix(&ctx, 8);
        let f = run_config(&same, SchedulerPolicy::Fifo, 4);
        let a = run_config(&same, SchedulerPolicy::ModelAffinity, 4);
        assert_eq!(f.pipelined_total_cycles, a.pipelined_total_cycles);
    }
}
