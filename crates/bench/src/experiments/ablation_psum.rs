//! Ablation — MPE psum-slot sizing (§IV-B).
//!
//! The MPEs accumulate partial sums "for several vertices at a time" but
//! "have only limited psum slots"; when the rabbit/turtle spread exceeds
//! the slot budget, the fast rows stall. This sweep varies the per-MPE
//! slot count and reports the Weighting stall cycles per pass on the
//! citation datasets, under both the unbalanced baseline schedule (where
//! the spread is worst) and the FM+LR schedule (which shrinks the spread
//! at the source) — showing why 64 slots suffice once load balancing is
//! on.

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_core::mpe::psum_stall_cycles;
use gnnie_core::weighting::{schedule, BlockProfile, WeightingMode};
use gnnie_graph::Dataset;

use crate::{table::fmt_count, Ctx, ExperimentResult, Table};

/// Slot counts swept (the paper configuration uses 64).
pub const SLOT_SWEEP: [u64; 6] = [8, 16, 32, 64, 128, 256];

/// Datasets swept.
pub const DATASETS: [Dataset; 3] = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];

/// Stall cycles per pass for one dataset under `mode` across the sweep.
pub fn stalls_for(ctx: &Ctx, dataset: Dataset, mode: WeightingMode) -> Vec<u64> {
    let ds = ctx.dataset(dataset);
    let cfg = AcceleratorConfig::paper(dataset);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    let per_row = schedule(&profile, &arr, mode).per_row_cycles(&arr);
    SLOT_SWEEP
        .iter()
        .map(|&slots| psum_stall_cycles(&per_row, profile.vertices() as u64, slots))
        .collect()
}

/// Regenerates the ablation table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut header: Vec<String> = vec!["dataset".into(), "schedule".into()];
    header.extend(SLOT_SWEEP.iter().map(|s| format!("{s} slots")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for dataset in DATASETS {
        for mode in [WeightingMode::Baseline, WeightingMode::FmLr] {
            let mut row = vec![format!("{dataset:?}"), mode.to_string()];
            row.extend(stalls_for(ctx, dataset, mode).iter().map(|&s| fmt_count(s)));
            t.row(row);
        }
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "stall cycles per Weighting pass from psum-slot exhaustion: the \
         unbalanced baseline schedule needs large psum spads to absorb the \
         rabbit/turtle spread, while FM+LR shrinks the spread at the source \
         so the paper's 64-slot MPEs run stall-free — load balancing and \
         buffer sizing trade against each other (§IV-B)"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A6",
        title: "MPE psum slots vs Weighting stalls (§IV-B)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalls_decrease_with_more_slots() {
        let ctx = Ctx::with_scale(0.3);
        for dataset in DATASETS {
            let stalls = stalls_for(&ctx, dataset, WeightingMode::Baseline);
            for w in stalls.windows(2) {
                assert!(w[0] >= w[1], "{dataset:?}: more slots must not add stalls {stalls:?}");
            }
        }
    }

    #[test]
    fn balanced_schedule_stalls_no_more_than_baseline() {
        let ctx = Ctx::with_scale(0.3);
        for dataset in DATASETS {
            let base = stalls_for(&ctx, dataset, WeightingMode::Baseline);
            let lb = stalls_for(&ctx, dataset, WeightingMode::FmLr);
            for (b, l) in base.iter().zip(&lb) {
                assert!(l <= b, "{dataset:?}: FM+LR must not stall more ({lb:?} vs {base:?})");
            }
        }
    }

    #[test]
    fn paper_config_runs_stall_free_with_load_balancing() {
        let ctx = Ctx::with_scale(0.3);
        for dataset in DATASETS {
            let lb = stalls_for(&ctx, dataset, WeightingMode::FmLr);
            // Index 3 is the paper's 64-slot point.
            assert_eq!(lb[3], 0, "{dataset:?}: 64 slots must absorb the FM+LR spread");
        }
    }

    #[test]
    fn table_has_a_row_per_dataset_and_mode() {
        let ctx = Ctx::with_scale(0.1);
        let r = run(&ctx);
        // header + separator + 3 datasets x 2 modes + blank + note.
        assert_eq!(r.lines.len(), 2 + 6 + 2);
    }
}
