//! Online-serving sweep — sustained request rate under a p99 latency
//! bound, plus the daemon-vs-static cycle comparison.
//!
//! The online layer (`gnnie-serve::online`) replays a simulated-clock
//! arrival trace through the continuous-batching scheduler. Two headline
//! questions make it a perf trajectory worth gating:
//!
//! * **sustained req/s at a p99 bound** — sweep Poisson arrival rates as
//!   multiples of the service rate (1 / mean resident service time) and
//!   record the highest rate the server absorbs with zero admission
//!   rejections and p99 latency under the bound. Open-loop arrivals mean
//!   overload shows up as queueing latency, not silently slower clients.
//! * **daemon vs static planner** — the same queue served as a static
//!   t = 0 trace by the online scheduler (weight residency carried
//!   across consecutive same-model batches) against the static batch
//!   planner's pipelined makespan. The ratio must stay ≥ 1: the online
//!   path never pays more simulated cycles than the batch planner on
//!   the mix the planner was built for.
//!
//! Every number here is simulated cycles — deterministic run to run —
//! so the committed baselines are tight, unlike the wall-clock benches.

use gnnie_graph::Dataset;
use gnnie_serve::{
    schedule_online, ArrivalProcess, LoadGen, OnlineConfig, OnlineReport, SchedulerPolicy,
    ServeConfig, Server, SimClock, SlaClass, SlaMix,
};

use crate::experiments::serving_throughput::same_model_mix;
use crate::{Ctx, ExperimentResult, Table};

/// Arrival rates swept, as multiples of the service rate.
pub const RATE_FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// The p99 bound, as a multiple of the mean resident service time. It
/// sits above the Standard class's 16x deadline slack on purpose: the
/// scheduler trades latency *within* the deadline for batch fill, so an
/// unsaturated server runs p99 near the slack; only a real backlog (or
/// the cold starts of a saturated mix) pushes past this bound.
pub const P99_BOUND_FACTOR: f64 = 24.0;

/// Requests in each replayed trace. Only [`PROFILED`] distinct requests
/// are ever simulated — the trace reuses their measured costs modulo
/// `PROFILED`, and the schedule itself is exact integer arithmetic, so a
/// long trace costs nothing extra. Long enough that overload builds a
/// genuine backlog and trips admission control.
pub const TRACE_LEN: usize = 96;

/// Distinct requests profiled (cold + resident simulation each).
pub const PROFILED: usize = 16;

/// One swept arrival rate.
#[derive(Debug, Clone)]
pub struct RateRow {
    /// Rate as a multiple of the service rate.
    pub factor: f64,
    /// Absolute Poisson arrival rate (requests/s).
    pub rate_rps: f64,
    /// The serving record at this rate.
    pub report: OnlineReport,
    /// Zero rejections and p99 under the bound.
    pub sustained: bool,
}

/// The whole experiment's outcome.
#[derive(Debug, Clone)]
pub struct OnlineServingResult {
    /// The rate sweep, ascending.
    pub rows: Vec<RateRow>,
    /// 1 / mean resident service time (requests/s).
    pub service_rate_rps: f64,
    /// The p99 latency bound (seconds).
    pub p99_bound_s: f64,
    /// Highest swept rate that stayed sustained (0 if none).
    pub sustained_rps_at_p99: f64,
    /// Static planner pipelined cycles / online static-trace makespan.
    /// ≥ 1 means the online path never loses to the batch planner.
    pub daemon_vs_static_cycle_ratio: f64,
    /// The static batch planner's pipelined makespan (cycles).
    pub static_pipelined_cycles: u64,
    /// The online scheduler's makespan on the same queue at t = 0.
    pub online_makespan_cycles: u64,
}

/// Runs the sweep: profiles [`PROFILED`] distinct requests' cold and
/// resident costs once, then replays the (cheap, integer-exact)
/// schedule of a [`TRACE_LEN`]-request trace at each rate.
pub fn sweep(ctx: &Ctx) -> OnlineServingResult {
    let profiled = same_model_mix(ctx, PROFILED);
    let clock = SimClock::paper(Dataset::Cora);
    let server = Server::new(ServeConfig {
        policy: SchedulerPolicy::ModelAffinity,
        max_batch: 8,
        workers: 4,
        ..ServeConfig::default()
    });
    let profiled_costs = server.profile_costs(&profiled);

    // The long trace clones the profiled requests modulo PROFILED; the
    // cost oracle maps each clone to its original's measurement.
    let queue: Vec<_> = (0..TRACE_LEN)
        .map(|i| {
            let base = profiled[i % PROFILED];
            gnnie_serve::InferenceRequest::new(
                i as u64,
                base.model,
                base.dataset,
                base.scale,
                base.seed,
            )
        })
        .collect();
    let costs: std::collections::HashMap<_, _> = queue
        .iter()
        .map(|r| (r.id, profiled_costs[&profiled[r.id as usize % PROFILED].id].clone()))
        .collect();

    let mean_service_s = profiled
        .iter()
        .map(|r| clock.to_seconds(profiled_costs[&r.id].resident_cycles()))
        .sum::<f64>()
        / profiled.len() as f64;
    let service_rate_rps = 1.0 / mean_service_s;
    let p99_bound_s = P99_BOUND_FACTOR * mean_service_s;

    let cfg = OnlineConfig { max_batch: 8, admission_control: true };
    let mut rows = Vec::new();
    let mut sustained_rps_at_p99 = 0.0f64;
    for factor in RATE_FACTORS {
        let rate_rps = factor * service_rate_rps;
        let gen = LoadGen {
            process: ArrivalProcess::Poisson { rate_rps },
            sla: SlaMix::Uniform(SlaClass::Standard),
            seed: ctx.seed(),
        };
        let trace = gen.generate(&queue, &clock);
        let report = schedule_online(&trace, &costs, &cfg, &clock);
        let sustained = report.rejected.is_empty() && report.p99_latency_s() <= p99_bound_s;
        if sustained {
            sustained_rps_at_p99 = sustained_rps_at_p99.max(rate_rps);
        }
        rows.push(RateRow { factor, rate_rps, report, sustained });
    }

    // Daemon-vs-static: the batch planner's home turf (same-model queue,
    // everything at t = 0, no deadlines). The online scheduler carries
    // weight residency across consecutive batches, so its makespan must
    // not exceed the planner's pipelined total. The profiled 16-request
    // queue keeps the planner's side to simulations already paid for.
    let static_report = server.run(&profiled);
    let static_trace = LoadGen {
        process: ArrivalProcess::Static,
        sla: SlaMix::Uniform(SlaClass::Batch),
        seed: ctx.seed(),
    }
    .generate(&profiled, &clock);
    let online = schedule_online(&static_trace, &profiled_costs, &cfg, &clock);

    OnlineServingResult {
        rows,
        service_rate_rps,
        p99_bound_s,
        sustained_rps_at_p99,
        daemon_vs_static_cycle_ratio: static_report.pipelined_total_cycles as f64
            / online.makespan_cycles as f64,
        static_pipelined_cycles: static_report.pipelined_total_cycles,
        online_makespan_cycles: online.makespan_cycles,
    }
}

/// Regenerates the online-serving table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    render(&sweep(ctx))
}

/// Renders an already-computed sweep (the `online_serving` bin reuses
/// one sweep for both the table and its JSON artifact).
pub fn render(result: &OnlineServingResult) -> ExperimentResult {
    let mut t = Table::new(&[
        "rate x",
        "req/s",
        "served",
        "rejected",
        "p50 us",
        "p95 us",
        "p99 us",
        "hit %",
        "out req/s",
        "sustained",
    ]);
    for row in &result.rows {
        let r = &row.report;
        t.row(vec![
            format!("{:.2}", row.factor),
            format!("{:.0}", row.rate_rps),
            r.outcomes.len().to_string(),
            r.rejected.len().to_string(),
            format!("{:.1}", r.p50_latency_s() * 1e6),
            format!("{:.1}", r.p95_latency_s() * 1e6),
            format!("{:.1}", r.p99_latency_s() * 1e6),
            format!("{:.0}", r.deadline_hit_rate() * 100.0),
            format!("{:.0}", r.throughput_rps()),
            if row.sustained { "yes" } else { "no" }.to_string(),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(format!(
        "sustained {:.0} req/s at p99 <= {:.1} us ({}x mean resident service); \
         static-trace online makespan {} cycles vs batch planner {} \
         ({:.3}x, >= 1 means the online path never loses)",
        result.sustained_rps_at_p99,
        result.p99_bound_s * 1e6,
        P99_BOUND_FACTOR,
        result.online_makespan_cycles,
        result.static_pipelined_cycles,
        result.daemon_vs_static_cycle_ratio,
    ));
    ExperimentResult {
        id: "Online",
        title: "Online serving: sustained rate at a p99 bound (gnnie-serve)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_rate_is_positive_and_overload_degrades() {
        let ctx = Ctx::with_scale(0.1);
        let result = sweep(&ctx);
        assert_eq!(result.rows.len(), RATE_FACTORS.len());
        // At a quarter of the service rate the server keeps up.
        assert!(result.rows[0].sustained, "0.25x the service rate must be sustained");
        assert!(result.sustained_rps_at_p99 > 0.0);
        // At 4x the service rate the backlog outgrows the Standard
        // deadline slack and admission control starts rejecting.
        let overload = result.rows.last().unwrap();
        assert!(
            !overload.sustained && !overload.report.rejected.is_empty(),
            "4x the service rate must overload the server \
             (rejected {}, p99 {:.1} us vs bound {:.1} us)",
            overload.report.rejected.len(),
            overload.report.p99_latency_s() * 1e6,
            result.p99_bound_s * 1e6
        );
        // Every request is accounted for at every rate.
        for row in &result.rows {
            assert_eq!(row.report.outcomes.len() + row.report.rejected.len(), TRACE_LEN);
        }
    }

    #[test]
    fn online_static_trace_never_loses_to_the_batch_planner() {
        // The PR's acceptance criterion: on the planner's own mix the
        // pipelined daemon path is at least as fast in simulated cycles.
        let ctx = Ctx::with_scale(0.1);
        let result = sweep(&ctx);
        assert!(
            result.daemon_vs_static_cycle_ratio >= 1.0,
            "online makespan {} must not exceed the static planner's {}",
            result.online_makespan_cycles,
            result.static_pipelined_cycles
        );
    }
}
