//! Ablation — exp-LUT sizing: the SFU's lookup-table exponentiation
//! (paper §III, citing Nilsson et al.) trades table storage against GAT
//! softmax accuracy. This sweep measures end-to-end attention error per
//! LUT size on a real layer, justifying the 256-entry default.

use gnnie_core::verify::{functional_aggregate_gat, functional_weighting_dense, ExpMode};
use gnnie_gnn::layers::GatLayer;
use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_gnn::params::ModelParams;
use gnnie_graph::generate;
use gnnie_graph::reorder::Permutation;
use gnnie_tensor::{DenseMatrix, ExpLut};

use crate::{Ctx, ExperimentResult, Table};

/// LUT sizes swept.
pub const LUT_ENTRIES: [usize; 5] = [16, 64, 256, 1024, 4096];

/// Max relative GAT-layer output error for one LUT size, against the
/// exact-exp datapath on the same schedule.
pub fn layer_error(entries: usize, seed: u64) -> f32 {
    let g = generate::powerlaw_chung_lu(150, 900, 2.0, seed);
    let perm = Permutation::descending_degree(&g);
    let g2 = perm.apply(&g);
    let params = ModelParams::init(ModelConfig::custom(GnnModel::Gat, &[24, 12]), seed);
    let layer = match &params.layers[0] {
        gnnie_gnn::layers::GnnLayer::Gat(l) => l.clone(),
        _ => unreachable!("GAT config yields GAT layers"),
    };
    let h = DenseMatrix::from_fn(150, 24, |r, c| (((r * 17 + c * 5) % 13) as f32 - 6.0) * 0.1);
    let h2 = DenseMatrix::from_fn(150, 24, |r, c| h.get(perm.old_of(r) as usize, c));
    let hw = functional_weighting_dense(&h2, layer.weight(), 16);
    let exact = gat_once(&g2, &hw, &layer, &ExpMode::Exact);
    let lut = gat_once(&g2, &hw, &layer, &ExpMode::Lut(ExpLut::new(entries)));
    let scale = exact.as_slice().iter().fold(1e-12f32, |m, &x| m.max(x.abs()));
    exact.max_abs_diff(&lut) / scale
}

fn gat_once(
    g: &gnnie_graph::CsrGraph,
    hw: &DenseMatrix,
    layer: &GatLayer,
    mode: &ExpMode,
) -> DenseMatrix {
    functional_aggregate_gat(g, hw, layer, mode, 40, 5)
}

/// Regenerates the ablation table.
pub fn run(_ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["LUT entries", "storage bits", "max rel. softmax error"]);
    for entries in LUT_ENTRIES {
        let lut = ExpLut::new(entries);
        t.row(vec![
            entries.to_string(),
            lut.storage_bits().to_string(),
            format!("{:.2e}", layer_error(entries, 7)),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "the 256-entry default keeps GAT outputs within ~1% of exact softmax at \
         a few kilobits of table — the 'accurate, low-area' point of paper §III"
            .to_string(),
    );
    ExperimentResult { id: "Ablation A2", title: "Exp-LUT size vs GAT softmax accuracy", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_monotone_in_lut_size() {
        let coarse = layer_error(16, 3);
        let fine = layer_error(1024, 3);
        assert!(fine < coarse, "finer LUT must reduce softmax error: 16→{coarse}, 1024→{fine}");
    }

    #[test]
    fn default_lut_is_within_a_few_percent() {
        assert!(layer_error(256, 5) < 0.05);
    }
}
