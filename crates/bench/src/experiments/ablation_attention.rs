//! Ablation — the §V-A attention reordering: linear `O(|V|+|E|)` vs the
//! naïve per-edge evaluation the paper's complexity argument replaces.
//!
//! Not a paper figure (the paper states the asymptotic claim in prose);
//! this regenerates the evidence: operation counts and ideal cycles for
//! both orderings across the datasets, plus the mean-degree scaling that
//! makes the gap grow.

use gnnie_core::gat::AttentionCost;
use gnnie_graph::Dataset;

use crate::table::{fmt_count, fmt_ratio};
use crate::{Ctx, ExperimentResult, Table};

/// Regenerates the ablation table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "naive MACs",
        "reordered MACs",
        "MAC ratio",
        "cycle ratio (1216 MACs)",
    ]);
    for dataset in Dataset::ALL {
        let ds = ctx.dataset(dataset);
        let v = ds.graph.num_vertices() as u64;
        let e = ds.graph.num_edges() as u64;
        let naive = AttentionCost::naive(v, e, 128);
        let linear = AttentionCost::linear(v, e, 128);
        t.row(vec![
            dataset.abbrev().to_string(),
            fmt_count(naive.dot_macs),
            fmt_count(linear.dot_macs),
            fmt_ratio(naive.dot_macs as f64 / linear.dot_macs as f64),
            fmt_ratio(
                naive.compute_cycles(1216) as f64 / linear.compute_cycles(1216).max(1) as f64,
            ),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "the MAC ratio tracks (1 + mean degree): e_{i,2} is computed once per vertex \
         instead of once per incident edge (paper §V-A)"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A1",
        title: "GAT attention: naive vs linear-complexity reordering",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_tracks_mean_degree() {
        let ctx = Ctx::with_scale(0.2);
        let ds = ctx.dataset(Dataset::Pubmed);
        let v = ds.graph.num_vertices() as u64;
        let e = ds.graph.num_edges() as u64;
        let ratio = AttentionCost::naive(v, e, 128).dot_macs as f64
            / AttentionCost::linear(v, e, 128).dot_macs as f64;
        let mean_deg_plus_1 = (2 * e + v) as f64 / v as f64;
        assert!(
            (ratio - mean_deg_plus_1).abs() / mean_deg_plus_1 < 0.01,
            "ratio {ratio} vs 1+mean degree {mean_deg_plus_1}"
        );
    }

    #[test]
    fn renders_all_datasets() {
        let r = run(&Ctx::with_scale(0.05));
        assert_eq!(r.lines.len(), 2 + 5 + 2);
    }
}
