//! Fig. 18 — cumulative effectiveness of GNNIE's optimizations.
//!
//! Left panel: Aggregation time under CP (degree-aware caching), CP+FM,
//! and CP+FM+LB, relative to a baseline with none of them (4 MACs/CPE,
//! id-order processing, no load balancing). Paper-reported cumulative
//! aggregation-time reductions: 47% (Cora), 69% (Citeseer), 87% (Pubmed).
//!
//! Middle/right panels: the same ladder applied to full GCN and GAT
//! inference time (CP, CP+FM, CP+FM+LB where LB includes LR).

use gnnie_core::config::{AcceleratorConfig, Design};
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::{Ctx, ExperimentResult, Table};

/// The optimization ladder of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// No cache policy, no FM, no LR, no aggregation LB, 4 MACs/CPE.
    Baseline,
    /// Degree-aware cache replacement policy only.
    Cp,
    /// CP plus the flexible-MAC architecture.
    CpFm,
    /// CP + FM + load balancing (aggregation LB and Weighting LR).
    CpFmLb,
}

impl Step {
    /// All steps in ladder order.
    pub const ALL: [Step; 4] = [Step::Baseline, Step::Cp, Step::CpFm, Step::CpFmLb];

    /// The accelerator configuration for this step.
    pub fn config(self, dataset: Dataset) -> AcceleratorConfig {
        let input = AcceleratorConfig::paper(dataset).input_buffer_bytes;
        match self {
            Step::Baseline => AcceleratorConfig::ablation_baseline(input),
            Step::Cp => {
                let mut c = AcceleratorConfig::ablation_baseline(input);
                c.enable_cache_policy = true;
                c
            }
            Step::CpFm => {
                let mut c = AcceleratorConfig::with_design(Design::E, input);
                c.enable_lr = false;
                c.enable_agg_lb = false;
                c
            }
            Step::CpFmLb => AcceleratorConfig::with_design(Design::E, input),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Step::Baseline => "baseline",
            Step::Cp => "CP",
            Step::CpFm => "CP+FM",
            Step::CpFmLb => "CP+FM+LB",
        }
    }
}

/// (aggregation cycles, total cycles) for one ladder step.
pub fn cycles_at(ctx: &Ctx, model: GnnModel, dataset: Dataset, step: Step) -> (u64, u64) {
    let r = ctx.run_gnnie_with(step.config(dataset), model, dataset);
    (r.aggregation_cycles(), r.total_cycles)
}

/// Regenerates Fig. 18 (all three panels).
pub fn run(ctx: &Ctx) -> ExperimentResult {
    /// Paper-reported cumulative aggregation-time reductions at CP+FM+LB.
    const PAPER_AGG_REDUCTION: [(Dataset, f64); 3] =
        [(Dataset::Cora, 0.47), (Dataset::Citeseer, 0.69), (Dataset::Pubmed, 0.87)];
    let datasets = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];

    let mut lines = Vec::new();
    // Left panel: aggregation time (GCN).
    let mut t = Table::new(&["dataset", "step", "agg cycles", "reduction"]);
    for dataset in datasets {
        let base = cycles_at(ctx, GnnModel::Gcn, dataset, Step::Baseline).0;
        for step in Step::ALL {
            let agg = cycles_at(ctx, GnnModel::Gcn, dataset, step).0;
            t.row(vec![
                dataset.abbrev().to_string(),
                step.label().to_string(),
                agg.to_string(),
                format!("{:.0}%", (1.0 - agg as f64 / base.max(1) as f64) * 100.0),
            ]);
        }
        let paper = PAPER_AGG_REDUCTION.iter().find(|(d, _)| *d == dataset).unwrap().1;
        let measured = 1.0
            - cycles_at(ctx, GnnModel::Gcn, dataset, Step::CpFmLb).0 as f64
                / base.max(1) as f64;
        lines.push(format!(
            "{:4} cumulative aggregation reduction: measured {:.0}%, paper {:.0}%",
            dataset.abbrev(),
            measured * 100.0,
            paper * 100.0
        ));
    }
    let mut out = t.render();
    out.push(String::new());
    out.append(&mut lines);
    out.push(String::new());

    // Middle/right panels: inference time for GCN and GAT.
    let mut t2 = Table::new(&["model", "dataset", "step", "total cycles", "reduction"]);
    for model in [GnnModel::Gcn, GnnModel::Gat] {
        for dataset in datasets {
            let base = cycles_at(ctx, model, dataset, Step::Baseline).1;
            for step in [Step::Cp, Step::CpFm, Step::CpFmLb] {
                let total = cycles_at(ctx, model, dataset, step).1;
                t2.row(vec![
                    model.name().to_string(),
                    dataset.abbrev().to_string(),
                    step.label().to_string(),
                    total.to_string(),
                    format!("{:.0}%", (1.0 - total as f64 / base.max(1) as f64) * 100.0),
                ]);
            }
        }
    }
    out.extend(t2.render());
    out.push(String::new());
    out.push(
        "paper: reductions grow with graph size (Pubmed > Cora), demonstrating \
         scalability of the optimizations"
            .to_string(),
    );
    ExperimentResult {
        id: "Fig. 18",
        title: "Effectiveness of GNNIE's optimization methods",
        lines: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_improves_aggregation_monotonically_enough() {
        let ctx = Ctx::with_scale(0.2);
        let base = cycles_at(&ctx, GnnModel::Gcn, Dataset::Cora, Step::Baseline).0;
        let cp = cycles_at(&ctx, GnnModel::Gcn, Dataset::Cora, Step::Cp).0;
        let full = cycles_at(&ctx, GnnModel::Gcn, Dataset::Cora, Step::CpFmLb).0;
        assert!(cp < base, "CP must cut aggregation time: {cp} vs {base}");
        assert!(full < cp, "FM+LB must cut further: {full} vs {cp}");
    }

    #[test]
    fn full_ladder_cuts_total_inference_time() {
        let ctx = Ctx::with_scale(0.2);
        for model in [GnnModel::Gcn, GnnModel::Gat] {
            let base = cycles_at(&ctx, model, Dataset::Citeseer, Step::Baseline).1;
            let full = cycles_at(&ctx, model, Dataset::Citeseer, Step::CpFmLb).1;
            assert!(full < base, "{model}: {full} vs {base}");
        }
    }
}
