//! Ablation — multi-head GAT scaling (extension beyond Table III).
//!
//! The paper evaluates single-head GATs, but the GAT architecture it
//! cites (Veličković et al.) defaults to K = 8 heads on hidden layers.
//! Heads attend independently — K Weighting passes with distinct weight
//! matrices, K softmax pipelines, K weighted aggregations — and hidden
//! layers *concatenate* head outputs, so the next layer's input width is
//! `K · hidden` and its per-head Weighting grows with K too. This sweep
//! measures the resulting superlinear cycle/energy scaling: attention
//! work scales exactly K×, the concat layer's weighting K²×.

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::engine::Engine;
use gnnie_core::report::InferenceReport;
use gnnie_gnn::model::ModelConfig;
use gnnie_graph::Dataset;

use crate::{table::fmt_count, table::fmt_seconds, Ctx, ExperimentResult, Table};

/// Head counts swept (1 is the paper's Table III point).
pub const HEAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Datasets swept.
pub const DATASETS: [Dataset; 3] = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];

/// Runs the K-head GAT for one dataset.
pub fn run_heads(ctx: &Ctx, dataset: Dataset, heads: usize) -> InferenceReport {
    let ds = ctx.dataset(dataset);
    let cfg = AcceleratorConfig::paper(dataset);
    Engine::new(cfg).run(&ModelConfig::gat_multihead(&ds.spec, heads), &ds)
}

/// Regenerates the ablation table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "heads",
        "cycles",
        "latency",
        "energy (uJ)",
        "exp evals",
        "vs 1 head",
    ]);
    for dataset in DATASETS {
        let base = run_heads(ctx, dataset, 1);
        for heads in HEAD_SWEEP {
            let r = run_heads(ctx, dataset, heads);
            let exp: u64 = r.layers.iter().map(|l| l.aggregation.exp_evals).sum();
            t.row(vec![
                format!("{dataset:?}"),
                heads.to_string(),
                fmt_count(r.total_cycles),
                fmt_seconds(r.latency_s),
                format!("{:.1}", r.energy.total_pj() / 1e6),
                fmt_count(exp),
                format!("{:.2}x", r.total_cycles as f64 / base.total_cycles as f64),
            ]);
        }
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "heads attend independently, so attention work (exp evals) scales \
         exactly with K; end-to-end cycles grow faster than K because the \
         concatenated head outputs widen the next layer's input to K*128, \
         making its weighting K^2. The same single-engine dataflow absorbs \
         all of it — no pipeline rebalancing needed (extension of Table III)"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A8",
        title: "Multi-head GAT scaling (K heads, extension of Table III)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_grow_monotonically_with_heads() {
        let ctx = Ctx::with_scale(0.15);
        for dataset in [Dataset::Cora, Dataset::Citeseer] {
            let mut last = 0;
            for heads in HEAD_SWEEP {
                let r = run_heads(&ctx, dataset, heads);
                assert!(r.total_cycles > last, "{dataset:?} at {heads} heads");
                last = r.total_cycles;
            }
        }
    }

    #[test]
    fn exp_evals_scale_exactly_with_heads() {
        let ctx = Ctx::with_scale(0.15);
        let exp_of = |heads| -> u64 {
            run_heads(&ctx, Dataset::Cora, heads)
                .layers
                .iter()
                .map(|l| l.aggregation.exp_evals)
                .sum()
        };
        let one = exp_of(1);
        assert!(one > 0);
        assert_eq!(exp_of(8), 8 * one);
    }

    #[test]
    fn head_scaling_lands_between_linear_and_quadratic() {
        // Attention scales K×, the concat layer's weighting K²×; the
        // blend must land strictly between (K=8: within [4, 64]).
        let ctx = Ctx::with_scale(0.15);
        let one = run_heads(&ctx, Dataset::Pubmed, 1).total_cycles as f64;
        let eight = run_heads(&ctx, Dataset::Pubmed, 8).total_cycles as f64;
        let ratio = eight / one;
        assert!(ratio >= 4.0, "8 heads must do real extra work ({ratio:.1}x)");
        assert!(ratio <= 64.0, "8 heads cannot exceed the K^2 bound ({ratio:.1}x)");
    }
}
