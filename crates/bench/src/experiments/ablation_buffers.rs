//! Ablation — input-buffer sizing for the degree-aware cache (§VI,
//! §VIII-A).
//!
//! The paper sizes the input buffer at 256 KB for the small citation
//! graphs and 512 KB for the larger datasets. The buffer is the cache the
//! degree-aware policy manages: a larger buffer holds more of the
//! power-law head, so fewer vertices are evicted below γ and re-fetched
//! in later Rounds. This sweep runs the Aggregation cache simulation at
//! five buffer sizes and reports Rounds, re-fetches, and DRAM cycles —
//! showing the knee that justifies the paper's choices.

use gnnie_core::aggregation::{simulate_aggregation, AggregationParams};
use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_graph::reorder::Permutation;
use gnnie_graph::Dataset;
use gnnie_mem::HbmModel;

use crate::{table::fmt_count, Ctx, ExperimentResult, Table};

/// Buffer sizes swept, in KiB (the paper points are 256 and 512).
pub const BUFFER_KIB: [usize; 5] = [64, 128, 256, 512, 1024];

/// Datasets swept.
pub const DATASETS: [Dataset; 3] = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];

/// One sweep point's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoint {
    /// Input buffer size in KiB.
    pub kib: usize,
    /// Cache Rounds needed to process every edge.
    pub rounds: u32,
    /// Vertex re-fetches beyond the initial fill.
    pub refetches: u64,
    /// DRAM channel cycles attributable to Aggregation.
    pub dram_cycles: u64,
    /// Total Aggregation cycles.
    pub total_cycles: u64,
}

/// Runs the sweep for one dataset.
pub fn sweep(ctx: &Ctx, dataset: Dataset) -> Vec<BufferPoint> {
    let ds = ctx.dataset(dataset);
    let ordered = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
    BUFFER_KIB
        .iter()
        .map(|&kib| {
            let mut cfg = AcceleratorConfig::paper(dataset);
            cfg.input_buffer_bytes = kib * 1024;
            let arr = CpeArray::new(&cfg);
            let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
            let report = simulate_aggregation(
                &cfg,
                &arr,
                &ordered,
                AggregationParams { f_out: 128, is_gat: false },
                &mut dram,
            );
            let cache = report.cache.as_ref().expect("cache policy is on");
            BufferPoint {
                kib,
                rounds: cache.rounds,
                refetches: cache.refetches,
                dram_cycles: report.dram_cycles,
                total_cycles: report.total_cycles,
            }
        })
        .collect()
}

/// Regenerates the ablation table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "buffer",
        "rounds",
        "re-fetches",
        "DRAM cycles",
        "agg cycles",
        "vs paper pt",
    ]);
    for dataset in DATASETS {
        let points = sweep(ctx, dataset);
        let paper_kib = AcceleratorConfig::paper(dataset).input_buffer_bytes / 1024;
        let paper_cycles =
            points.iter().find(|p| p.kib == paper_kib).map(|p| p.total_cycles).unwrap_or(1);
        for p in &points {
            let marker = if p.kib == paper_kib { " <- paper" } else { "" };
            t.row(vec![
                format!("{dataset:?}"),
                format!("{} KiB{marker}", p.kib),
                p.rounds.to_string(),
                fmt_count(p.refetches),
                fmt_count(p.dram_cycles),
                fmt_count(p.total_cycles),
                format!("{:.2}x", p.total_cycles as f64 / paper_cycles as f64),
            ]);
        }
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "shrinking the input buffer below the paper's point multiplies \
         Rounds and re-fetches (the power-law head no longer fits), while \
         doubling it past the point buys little — the knee the paper's \
         256 KiB / 512 KiB split sits on (§VIII-A)"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A7",
        title: "Input-buffer size vs cache Rounds and DRAM traffic (§VI)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refetches_decrease_with_buffer_size() {
        let ctx = Ctx::with_scale(0.3);
        for dataset in DATASETS {
            let points = sweep(&ctx, dataset);
            for w in points.windows(2) {
                assert!(
                    w[0].refetches >= w[1].refetches,
                    "{dataset:?}: bigger buffer must not re-fetch more: {points:?}"
                );
            }
        }
    }

    #[test]
    fn rounds_are_monotone_nonincreasing() {
        let ctx = Ctx::with_scale(0.3);
        for dataset in DATASETS {
            let points = sweep(&ctx, dataset);
            for w in points.windows(2) {
                assert!(w[0].rounds >= w[1].rounds, "{dataset:?}: {points:?}");
            }
        }
    }

    #[test]
    fn every_point_completes_all_edges() {
        let ctx = Ctx::with_scale(0.2);
        // Smallest buffer on the biggest citation graph is the stress case.
        let points = sweep(&ctx, Dataset::Pubmed);
        assert_eq!(points.len(), BUFFER_KIB.len());
        for p in &points {
            assert!(p.total_cycles > 0);
            assert!(p.dram_cycles > 0);
        }
    }

    #[test]
    fn table_marks_the_paper_point() {
        let ctx = Ctx::with_scale(0.1);
        let r = run(&ctx);
        assert!(r.lines.iter().any(|l| l.contains("<- paper")));
    }
}
