//! Table II — dataset statistics: paper targets vs. the synthesized
//! stand-ins actually generated at the harness scale.

use gnnie_graph::Dataset;

use crate::table::fmt_count;
use crate::{Ctx, ExperimentResult, Table};

/// Regenerates Table II.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "scale",
        "|V| paper",
        "|V| gen",
        "|E| paper",
        "|E| gen",
        "feat",
        "labels",
        "sparsity paper",
        "sparsity gen",
    ]);
    for dataset in Dataset::ALL {
        let paper = dataset.spec();
        let ds = ctx.dataset(dataset);
        t.row(vec![
            dataset.abbrev().to_string(),
            format!("{:.2}", ctx.scale_for(dataset)),
            fmt_count(paper.vertices as u64),
            fmt_count(ds.graph.num_vertices() as u64),
            fmt_count(paper.edges as u64),
            fmt_count(ds.graph.num_edges() as u64),
            paper.feature_len.to_string(),
            paper.labels.to_string(),
            format!("{:.2}%", paper.feature_sparsity * 100.0),
            format!("{:.2}%", ds.features.sparsity() * 100.0),
        ]);
    }
    ExperimentResult {
        id: "Table II",
        title: "Dataset information (synthetic stand-ins)",
        lines: t.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_stats_track_scaled_targets() {
        let ctx = Ctx::with_scale(0.2);
        for dataset in [Dataset::Cora, Dataset::Citeseer] {
            let ds = ctx.dataset(dataset);
            let target = dataset.spec().scaled(0.2);
            let e = ds.graph.num_edges() as f64;
            assert!(
                (e - target.edges as f64).abs() / (target.edges as f64) < 0.05,
                "{dataset:?} edges {e} vs {}",
                target.edges
            );
            assert!(
                (ds.features.sparsity() - target.feature_sparsity).abs() < 0.01,
                "{dataset:?} sparsity"
            );
        }
    }

    #[test]
    fn renders_five_rows() {
        let r = run(&Ctx::with_scale(0.02));
        assert_eq!(r.lines.len(), 7); // header + separator + 5 datasets
    }
}
