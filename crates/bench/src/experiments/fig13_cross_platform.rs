//! Fig. 13 — cross-platform comparison against HyGCN (GCN, GraphSAGE,
//! GINConv) and AWB-GCN (GCN only).
//!
//! Neither prior accelerator computes graph softmax, so GATs are out for
//! both and AWB-GCN runs only GCNs — exactly the paper's framing. GNNIE
//! wins with 3.4× fewer MACs than AWB-GCN and ~14× less on-chip buffer
//! than HyGCN.

use gnnie_baselines::{AwbGcnModel, HygcnModel};
use gnnie_gnn::flops::ModelWorkload;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::table::fmt_ratio;
use crate::{Ctx, ExperimentResult, Table};

/// Paper-reported average speedups: (model, vs HyGCN, vs AWB-GCN).
pub const PAPER_AVG: [(GnnModel, Option<f64>, Option<f64>); 3] = [
    (GnnModel::Gcn, Some(25.0), Some(2.1)),
    (GnnModel::GraphSage, Some(72.0), None),
    (GnnModel::GinConv, Some(7.0), None),
];

/// Measured speedups of GNNIE over (HyGCN, AWB-GCN) for one model ×
/// dataset; `None` where the baseline cannot run the model.
pub fn speedups(ctx: &Ctx, model: GnnModel, dataset: Dataset) -> (Option<f64>, Option<f64>) {
    let report = ctx.run_gnnie(model, dataset);
    let ds = ctx.dataset(dataset);
    let cfg = ctx.model_config(model, dataset);
    let w = ModelWorkload::for_dataset(&cfg, &ds);
    let hygcn = HygcnModel::new().run(&w).map(|r| r.latency_s / report.latency_s);
    let awb = AwbGcnModel::new().run(&w).map(|r| r.latency_s / report.latency_s);
    (hygcn, awb)
}

/// Regenerates Fig. 13.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["model", "dataset", "vs HyGCN", "vs AWB-GCN"]);
    let mut summary = Vec::new();
    for model in [GnnModel::Gcn, GnnModel::GraphSage, GnnModel::GinConv] {
        let mut hy_prod = 1.0f64;
        let mut hy_n = 0u32;
        let mut awb_prod = 1.0f64;
        let mut awb_n = 0u32;
        for dataset in Dataset::ALL {
            let (hy, awb) = speedups(ctx, model, dataset);
            if let Some(h) = hy {
                hy_prod *= h;
                hy_n += 1;
            }
            if let Some(a) = awb {
                awb_prod *= a;
                awb_n += 1;
            }
            t.row(vec![
                model.name().to_string(),
                dataset.abbrev().to_string(),
                hy.map(fmt_ratio).unwrap_or_else(|| "--".into()),
                awb.map(fmt_ratio).unwrap_or_else(|| "--".into()),
            ]);
        }
        let paper = PAPER_AVG.iter().find(|(m, _, _)| *m == model).unwrap();
        summary.push(format!(
            "{:10} measured geo-mean: HyGCN {:>7} AWB-GCN {:>7}   paper: HyGCN {:>6} AWB-GCN {:>6}",
            model.name(),
            if hy_n > 0 { fmt_ratio(hy_prod.powf(1.0 / hy_n as f64)) } else { "--".into() },
            if awb_n > 0 { fmt_ratio(awb_prod.powf(1.0 / awb_n as f64)) } else { "--".into() },
            paper.1.map(fmt_ratio).unwrap_or_else(|| "--".into()),
            paper.2.map(fmt_ratio).unwrap_or_else(|| "--".into()),
        ));
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.extend(summary);
    lines.push(String::new());
    lines.push(
        "GATs/DiffPool omitted: neither prior accelerator implements graph softmax \
         (paper §VIII-C); AWB-GCN implements only GCNs."
            .to_string(),
    );
    ExperimentResult {
        id: "Fig. 13",
        title: "Performance comparison with HyGCN and AWB-GCN",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnnie_beats_hygcn_and_awb_on_gcn() {
        // Full-scale Citeseer: the ultra-sparse input layer is exactly
        // the regime where GNNIE's zero-skipping beats AWB-GCN's SpMM.
        let ctx = Ctx::with_scale(1.0);
        let (hy, awb) = speedups(&ctx, GnnModel::Gcn, Dataset::Citeseer);
        let hy = hy.expect("HyGCN runs GCN");
        let awb = awb.expect("AWB-GCN runs GCN");
        assert!(hy > 1.0, "HyGCN speedup {hy}");
        assert!(awb > 1.0, "AWB-GCN speedup {awb}");
        assert!(hy > awb, "AWB-GCN must be the closer competitor: {hy} vs {awb}");
    }

    #[test]
    fn unsupported_models_report_none() {
        let ctx = Ctx::with_scale(0.1);
        let (hy, awb) = speedups(&ctx, GnnModel::Gat, Dataset::Cora);
        assert!(hy.is_none());
        assert!(awb.is_none());
        let (_, awb_sage) = speedups(&ctx, GnnModel::GraphSage, Dataset::Cora);
        assert!(awb_sage.is_none());
    }
}
