//! Fig. 14 — energy breakdown for GCN and GAT across Cora, Citeseer, and
//! Pubmed, including the DRAM energy attributed to each on-chip buffer.
//!
//! The paper's observation: the output buffer dominates DRAM transactions
//! (psum spills for high-degree vertices); the weight buffer's share is
//! negligible.

use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;
use gnnie_mem::Component;

use crate::{Ctx, ExperimentResult, Table};

/// Regenerates Fig. 14.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "model",
        "dataset",
        "DRAM out (uJ)",
        "DRAM in (uJ)",
        "DRAM wt (uJ)",
        "on-chip (uJ)",
        "total (uJ)",
    ]);
    for model in [GnnModel::Gcn, GnnModel::Gat] {
        for dataset in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed] {
            let r = ctx.run_gnnie(model, dataset);
            let uj = |c: Component| r.energy.pj_of(c) / 1e6;
            t.row(vec![
                model.name().to_string(),
                dataset.abbrev().to_string(),
                format!("{:.1}", uj(Component::DramOutput)),
                format!("{:.1}", uj(Component::DramInput)),
                format!("{:.2}", uj(Component::DramWeight)),
                format!("{:.1}", r.energy.on_chip_pj() / 1e6),
                format!("{:.1}", r.energy.total_pj() / 1e6),
            ]);
        }
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "paper: the output buffer causes the most DRAM transactions (psum traffic); \
         weight-buffer DRAM energy is negligible"
            .to_string(),
    );
    ExperimentResult { id: "Fig. 14", title: "Energy breakdown for GCN and GAT", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_dram_energy_is_negligible() {
        let ctx = Ctx::with_scale(0.2);
        let r = ctx.run_gnnie(GnnModel::Gcn, Dataset::Cora);
        let wt = r.energy.pj_of(Component::DramWeight);
        let total_dram = r.energy.dram_pj();
        assert!(total_dram > 0.0);
        assert!(
            wt < 0.25 * total_dram,
            "weight DRAM share must be small: {wt} of {total_dram}"
        );
    }

    #[test]
    fn gat_spends_more_energy_than_gcn() {
        let ctx = Ctx::with_scale(0.2);
        let gcn = ctx.run_gnnie(GnnModel::Gcn, Dataset::Citeseer);
        let gat = ctx.run_gnnie(GnnModel::Gat, Dataset::Citeseer);
        assert!(gat.energy.total_pj() > gcn.energy.total_pj());
    }
}
