//! Fig. 17 — speedup-gain vs. hardware-overhead ratio β for Designs B–E.
//!
//! `β = (baseline cycles − design cycles) / (design MACs − baseline MACs)`
//! over the Weighting phase, baseline = Design A (uniform 4 MACs/CPE,
//! 1024 MACs). The paper's claim: β drops as MACs are added uniformly
//! (B→C→D) because sparsity leaves the extra MACs idle, while the
//! flexible-MAC Design E (1216 MACs) achieves the highest β on every
//! dataset.

use gnnie_core::config::{AcceleratorConfig, Design};
use gnnie_core::cpe::CpeArray;
use gnnie_core::weighting::{
    simulate_weighting_mode, BlockProfile, WeightingMode, WeightingParams,
};
use gnnie_graph::Dataset;
use gnnie_mem::HbmModel;

use crate::{Ctx, ExperimentResult, Table};

/// Weighting compute cycles for one design on one dataset (one layer,
/// F_out = 128). Designs A–D run the pinned baseline schedule (they are
/// uniform arrays with no reordering); Design E runs FM.
pub fn weighting_cycles(ctx: &Ctx, dataset: Dataset, design: Design) -> u64 {
    let ds = ctx.dataset(dataset);
    let cfg = AcceleratorConfig::with_design(design, 256 * 1024);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    let mode = if design == Design::E { WeightingMode::Fm } else { WeightingMode::Baseline };
    let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
    simulate_weighting_mode(&cfg, &arr, &profile, WeightingParams::default(), mode, &mut dram)
        .compute_cycles
}

/// β of `design` relative to Design A on `dataset` (Eq. 9).
pub fn beta(ctx: &Ctx, dataset: Dataset, design: Design) -> f64 {
    let base_cycles = weighting_cycles(ctx, dataset, Design::A) as f64;
    let design_cycles = weighting_cycles(ctx, dataset, design) as f64;
    let base_macs = AcceleratorConfig::with_design(Design::A, 1024).total_macs() as f64;
    let design_macs = AcceleratorConfig::with_design(design, 1024).total_macs() as f64;
    (base_cycles - design_cycles) / (design_macs - base_macs)
}

/// Regenerates Fig. 17.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["design", "MACs", "β (CR)", "β (CS)", "β (PB)"]);
    for design in [Design::B, Design::C, Design::D, Design::E] {
        let macs = AcceleratorConfig::with_design(design, 1024).total_macs();
        let betas: Vec<String> = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed]
            .iter()
            .map(|&d| format!("{:.2}", beta(ctx, d, design)))
            .collect();
        t.row(vec![
            design.to_string(),
            macs.to_string(),
            betas[0].clone(),
            betas[1].clone(),
            betas[2].clone(),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "paper: β falls from Design B to D (uniform MACs are wasted on sparse blocks) \
         and Design E's flexible MACs achieve the highest β on all datasets"
            .to_string(),
    );
    ExperimentResult {
        id: "Fig. 17",
        title: "Speedup gain vs hardware overhead (Designs B–E)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_e_has_highest_beta() {
        let ctx = Ctx::with_scale(0.4);
        for dataset in [Dataset::Cora, Dataset::Citeseer] {
            let be = beta(&ctx, dataset, Design::E);
            for design in [Design::B, Design::C, Design::D] {
                let b = beta(&ctx, dataset, design);
                assert!(be > b, "{dataset:?}: Design E β {be} must beat {design:?} β {b}");
            }
        }
    }

    #[test]
    fn beta_declines_with_uniform_mac_count() {
        let ctx = Ctx::with_scale(0.4);
        let bb = beta(&ctx, Dataset::Cora, Design::B);
        let bd = beta(&ctx, Dataset::Cora, Design::D);
        assert!(bb > bd, "uniform scaling must show diminishing returns: B {bb} vs D {bd}");
    }

    #[test]
    fn more_macs_never_increase_cycles() {
        let ctx = Ctx::with_scale(0.3);
        let a = weighting_cycles(&ctx, Dataset::Cora, Design::A);
        let d = weighting_cycles(&ctx, Dataset::Cora, Design::D);
        assert!(d <= a);
    }
}
