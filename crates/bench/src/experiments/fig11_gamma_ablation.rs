//! Fig. 11 — ablation of the eviction threshold γ: DRAM accesses vs. γ
//! for Cora, Citeseer, and Pubmed.
//!
//! The paper's claim: higher γ evicts more aggressively, forcing evicted
//! vertices back later and increasing DRAM traffic; too-low γ risks
//! deadlock (resolved dynamically). The paper settles on a static γ = 5.

use gnnie_core::aggregation::{simulate_aggregation, AggregationParams};
use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_graph::reorder::Permutation;
use gnnie_graph::{CsrGraph, Dataset};
use gnnie_mem::HbmModel;

use crate::table::fmt_count;
use crate::{Ctx, ExperimentResult, Table};

/// γ values swept (the paper's x-axis).
pub const GAMMAS: [u32; 8] = [1, 2, 3, 5, 8, 12, 16, 24];

/// DRAM accesses (64-byte transactions) for one γ on one graph.
pub fn dram_accesses(graph: &CsrGraph, dataset: Dataset, gamma: u32) -> u64 {
    let mut cfg = AcceleratorConfig::paper(dataset);
    cfg.gamma = gamma;
    let arr = CpeArray::new(&cfg);
    let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
    let report = simulate_aggregation(
        &cfg,
        &arr,
        graph,
        AggregationParams { f_out: 128, is_gat: false },
        &mut dram,
    );
    let cache = report.cache.expect("cache policy enabled");
    assert!(cache.completed, "γ={gamma} failed to complete");
    cache.counters.total_bytes() / 64
}

/// Regenerates Fig. 11.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["dataset", "γ", "DRAM accesses (64B)", "vs γ=1"]);
    for dataset in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed] {
        let ds = ctx.dataset(dataset);
        let graph = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
        let mut base = None;
        for gamma in GAMMAS {
            let accesses = dram_accesses(&graph, dataset, gamma);
            let b = *base.get_or_insert(accesses);
            t.row(vec![
                dataset.abbrev().to_string(),
                gamma.to_string(),
                fmt_count(accesses),
                format!("{:+.1}%", (accesses as f64 / b as f64 - 1.0) * 100.0),
            ]);
        }
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "paper: DRAM accesses grow with γ (more eviction → more refetch); the static \
         choice γ=5 balances traffic against deadlock risk"
            .to_string(),
    );
    ExperimentResult { id: "Fig. 11", title: "Ablation study on γ", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_accesses_trend_upward_in_gamma() {
        let ctx = Ctx::with_scale(0.3);
        let ds = ctx.dataset(Dataset::Cora);
        let graph = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
        let lo = dram_accesses(&graph, Dataset::Cora, 1);
        let hi = dram_accesses(&graph, Dataset::Cora, 24);
        assert!(hi >= lo, "γ=24 accesses {hi} must be ≥ γ=1 accesses {lo}");
    }

    #[test]
    fn all_gammas_complete() {
        let ctx = Ctx::with_scale(0.15);
        let ds = ctx.dataset(Dataset::Citeseer);
        let graph = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
        for gamma in GAMMAS {
            // dram_accesses asserts completion internally.
            let _ = dram_accesses(&graph, Dataset::Citeseer, gamma);
        }
    }
}
