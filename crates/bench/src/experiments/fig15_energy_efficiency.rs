//! Fig. 15 — energy efficiency (inferences/kJ): GNNIE vs HyGCN vs
//! AWB-GCN on GCN across the five datasets.
//!
//! Paper-reported ranges: HyGCN 2.3×10¹–5.2×10⁵, AWB-GCN
//! 1.5×10²–4.4×10⁵, GNNIE 7.4×10³–6.7×10⁶ inferences/kJ — GNNIE tops
//! every dataset.

use gnnie_baselines::{AwbGcnModel, HygcnModel};
use gnnie_gnn::flops::ModelWorkload;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::{Ctx, ExperimentResult, Table};

/// Measured inferences/kJ for (GNNIE, HyGCN, AWB-GCN) on GCN × `dataset`.
pub fn efficiency(ctx: &Ctx, dataset: Dataset) -> (f64, Option<f64>, Option<f64>) {
    let report = ctx.run_gnnie(GnnModel::Gcn, dataset);
    let ds = ctx.dataset(dataset);
    let cfg = ctx.model_config(GnnModel::Gcn, dataset);
    let w = ModelWorkload::for_dataset(&cfg, &ds);
    let hygcn = HygcnModel::new().run(&w).map(|r| r.inferences_per_kj());
    let awb = AwbGcnModel::new().run(&w).map(|r| r.inferences_per_kj());
    (report.inferences_per_kj(), hygcn, awb)
}

/// Regenerates Fig. 15.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["dataset", "GNNIE (inf/kJ)", "HyGCN", "AWB-GCN"]);
    for dataset in Dataset::ALL {
        let (gnnie, hygcn, awb) = efficiency(ctx, dataset);
        t.row(vec![
            dataset.abbrev().to_string(),
            format!("{gnnie:.3e}"),
            hygcn.map(|x| format!("{x:.3e}")).unwrap_or_else(|| "--".into()),
            awb.map(|x| format!("{x:.3e}")).unwrap_or_else(|| "--".into()),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "paper ranges (GCN): HyGCN 2.3e1–5.2e5, AWB-GCN 1.5e2–4.4e5, GNNIE 7.4e3–6.7e6 \
         inferences/kJ; GNNIE leads on every dataset"
            .to_string(),
    );
    ExperimentResult {
        id: "Fig. 15",
        title: "Energy efficiency: GNNIE vs HyGCN vs AWB-GCN",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnnie_is_most_efficient() {
        let ctx = Ctx::with_scale(1.0);
        for dataset in [Dataset::Cora, Dataset::Citeseer] {
            let (gnnie, hygcn, awb) = efficiency(&ctx, dataset);
            assert!(gnnie > hygcn.unwrap(), "{dataset:?} vs HyGCN");
            assert!(gnnie > awb.unwrap(), "{dataset:?} vs AWB-GCN");
        }
    }

    #[test]
    fn efficiency_decreases_with_graph_size() {
        let ctx = Ctx::with_scale(0.5);
        let (small, _, _) = efficiency(&ctx, Dataset::Cora);
        let (large, _, _) = efficiency(&ctx, Dataset::Pubmed);
        assert!(small > large, "bigger graphs cost more energy per inference");
    }
}
