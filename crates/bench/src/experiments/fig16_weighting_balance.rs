//! Fig. 16 — per-CPE-row Weighting workload for the baseline, FM, and
//! FM+LR schedules on Cora, Citeseer, and Pubmed.
//!
//! The y-axis is the cycles each CPE row needs to produce 16 output
//! elements of the transformed features — exactly one weight-stationary
//! pass. Paper-reported pass-cycle reductions from FM: 6% (Cora), 14%
//! (Citeseer), 31% (Pubmed); LR smooths further.

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_core::weighting::{schedule, BlockProfile, WeightingMode};
use gnnie_graph::Dataset;
use gnnie_tensor::stats::LoadStats;

use crate::{Ctx, ExperimentResult, Table};

/// Per-row cycles of one pass under `mode`.
pub fn per_row_cycles(ctx: &Ctx, dataset: Dataset, mode: WeightingMode) -> Vec<u64> {
    let ds = ctx.dataset(dataset);
    let cfg = AcceleratorConfig::paper(dataset);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    schedule(&profile, &arr, mode).per_row_cycles(&arr)
}

/// Regenerates Fig. 16.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    /// Paper-reported FM pass-cycle reductions per dataset.
    const PAPER_FM_REDUCTION: [(Dataset, f64); 3] =
        [(Dataset::Cora, 0.06), (Dataset::Citeseer, 0.14), (Dataset::Pubmed, 0.31)];
    let mut t = Table::new(&["dataset", "mode", "max row", "min row", "spread", "rows 0..15"]);
    let mut summary = Vec::new();
    for dataset in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed] {
        let mut pass = Vec::new();
        for mode in [WeightingMode::Baseline, WeightingMode::Fm, WeightingMode::FmLr] {
            let rows = per_row_cycles(ctx, dataset, mode);
            let stats = LoadStats::of(&rows);
            pass.push(*rows.iter().max().unwrap_or(&0));
            t.row(vec![
                dataset.abbrev().to_string(),
                mode.to_string(),
                stats.max.to_string(),
                stats.min.to_string(),
                stats.range().to_string(),
                rows.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" "),
            ]);
        }
        let fm_red = 1.0 - pass[1] as f64 / pass[0].max(1) as f64;
        let lr_red = 1.0 - pass[2] as f64 / pass[0].max(1) as f64;
        let paper =
            PAPER_FM_REDUCTION.iter().find(|(d, _)| *d == dataset).map(|(_, r)| *r).unwrap();
        summary.push(format!(
            "{:4} pass-cycle reduction: FM {:.0}% (paper {:.0}%), FM+LR {:.0}%",
            dataset.abbrev(),
            fm_red * 100.0,
            paper * 100.0,
            lr_red * 100.0,
        ));
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.extend(summary);
    ExperimentResult {
        id: "Fig. 16",
        title: "CPE row workload in Weighting (baseline / FM / FM+LR)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fm_and_lr_shrink_spread_and_makespan() {
        let ctx = Ctx::with_scale(0.4);
        for dataset in [Dataset::Cora, Dataset::Citeseer] {
            let base = per_row_cycles(&ctx, dataset, WeightingMode::Baseline);
            let fm = per_row_cycles(&ctx, dataset, WeightingMode::Fm);
            let lr = per_row_cycles(&ctx, dataset, WeightingMode::FmLr);
            let spread = |v: &[u64]| v.iter().max().unwrap() - v.iter().min().unwrap();
            assert!(spread(&fm) < spread(&base), "{dataset:?} FM must narrow the spread");
            assert!(
                fm.iter().max() <= base.iter().max(),
                "{dataset:?} FM must not slow the pass"
            );
            assert!(
                lr.iter().max() <= fm.iter().max(),
                "{dataset:?} LR must not slow the pass"
            );
        }
    }

    #[test]
    fn work_is_conserved_across_modes() {
        let ctx = Ctx::with_scale(0.3);
        let base: u64 =
            per_row_cycles(&ctx, Dataset::Cora, WeightingMode::Baseline).iter().sum();
        // Cycle totals differ (different MACs per row) but both are
        // positive and within a small factor.
        let fm: u64 = per_row_cycles(&ctx, Dataset::Cora, WeightingMode::Fm).iter().sum();
        assert!(base > 0 && fm > 0);
        assert!((fm as f64) < 1.5 * base as f64);
    }
}
