//! Parallel-simulation sweep — `Engine::run` wall clock at 1/2/4/8
//! worker threads vs the serial path, equality-checked per row.
//!
//! The engine's hot loops (the per-vertex Weighting profile and the
//! cache walk's vertex scans) shard across a `SimPool`; this sweep runs
//! every Table II dataset (GCN, paper configuration, `GNNIE_SCALE`-sized)
//! once serially and once per thread count, records the best-of-repeats
//! wall clock, and asserts the **bit-identity contract**: the
//! `InferenceReport` at any thread count must render byte-identically to
//! the serial one. CI uploads the result as
//! `BENCH_parallel_speedup.json` and the `bench_check` gate compares its
//! headline metrics (the identity flag is deterministic and gated
//! tightly; the wall-clock speedup has a conservative baseline — on a
//! one-core host forced threads can only add overhead, and that is still
//! a correct, gated data point).

use std::time::Instant;

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::engine::Engine;
use gnnie_core::SimThreads;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

use crate::{Ctx, ExperimentResult, Table};

/// Worker-thread counts swept against the serial path.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock repetitions per measurement (the minimum is reported).
const REPS: usize = 2;

/// One (dataset, threads) measurement.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Table II dataset.
    pub dataset: Dataset,
    /// Forced worker count (`SimThreads::Fixed`).
    pub threads: usize,
    /// `Engine::run` wall clock at `threads` workers, ms (best of
    /// repeats).
    pub run_ms: f64,
    /// The serial reference wall clock, ms (best of repeats).
    pub serial_ms: f64,
    /// `serial_ms / run_ms`.
    pub speedup: f64,
    /// Whether the report renders byte-identically to the serial one.
    pub identical: bool,
    /// Simulated total cycles (identical across rows of a dataset when
    /// `identical` holds).
    pub total_cycles: u64,
}

fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out.expect("reps >= 1"), best)
}

/// Runs the sweep over every Table II dataset at the context's scale.
pub fn sweep(ctx: &Ctx) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let ds = ctx.dataset(dataset);
        let mc = ctx.model_config(GnnModel::Gcn, dataset);
        let mut cfg = AcceleratorConfig::paper(dataset);
        cfg.sim_threads = SimThreads::Fixed(1);
        let serial_engine = Engine::new(cfg.clone());
        let (serial_report, serial_ms) = best_ms(REPS, || serial_engine.run(&mc, &ds));
        let serial_rendering = format!("{serial_report:?}");
        for threads in THREAD_SWEEP {
            cfg.sim_threads = SimThreads::Fixed(threads);
            let engine = Engine::new(cfg.clone());
            let (report, run_ms) = best_ms(REPS, || engine.run(&mc, &ds));
            rows.push(SpeedupRow {
                dataset,
                threads,
                run_ms,
                serial_ms,
                speedup: serial_ms / run_ms.max(1e-9),
                identical: format!("{report:?}") == serial_rendering,
                total_cycles: report.total_cycles,
            });
        }
    }
    rows
}

/// Regenerates the parallel-speedup table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    render(&sweep(ctx))
}

/// Renders an already-computed sweep (the bin reuses one sweep for the
/// table and the JSON artifact).
pub fn render(rows: &[SpeedupRow]) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "threads",
        "run ms",
        "serial ms",
        "speedup",
        "bit-identical",
        "total cycles",
    ]);
    for r in rows {
        t.row(vec![
            r.dataset.abbrev().to_string(),
            r.threads.to_string(),
            format!("{:.2}", r.run_ms),
            format!("{:.2}", r.serial_ms),
            format!("{:.2}x", r.speedup),
            if r.identical { "yes".into() } else { "NO".into() },
            r.total_cycles.to_string(),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "the sharded loops (per-vertex Weighting profile, cache-walk vertex scans) \
         partition vertices into contiguous ranges and merge per-shard results in \
         shard order, so every report is byte-identical to the serial path; the \
         speedup column is host wall clock (expect <= 1x on a single-core box, \
         where forced workers only add scope/spawn overhead)"
            .to_string(),
    );
    ExperimentResult {
        id: "Parallel",
        title: "Parallel simulation speedup (sim-threads sweep)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_are_bit_identical_and_complete() {
        let ctx = Ctx::with_scale(0.02);
        let rows = sweep(&ctx);
        assert_eq!(rows.len(), Dataset::ALL.len() * THREAD_SWEEP.len());
        for r in &rows {
            assert!(r.identical, "{:?} @ {} threads diverged", r.dataset, r.threads);
            assert!(r.run_ms > 0.0 && r.serial_ms > 0.0);
            assert!(r.speedup.is_finite());
            assert!(r.total_cycles > 0);
        }
        // Cycles are a simulated quantity: constant across thread counts.
        for chunk in rows.chunks(THREAD_SWEEP.len()) {
            assert!(chunk.iter().all(|r| r.total_cycles == chunk[0].total_cycles));
        }
    }
}
