//! Tiered feature-cache sweep — workload-aware vs even capacity splits
//! of one global budget across the on-chip → DRAM → SSD hierarchy, per
//! Table II dataset.
//!
//! Each row runs the full `Engine::run` with `cfg.tiers` set to a
//! [`TierSpec::Split`] at the paper configuration's input-buffer budget.
//! That budget is the interesting operating point: the on-chip tier is
//! carved out of the *same SRAM* the Aggregation walk's dynamic subgraph
//! window lives in, so the naive even split (half the budget pinned
//! on-chip) starves the window and pays for it in walk evictions,
//! refetches, and deep-tier traffic — while the workload-aware split
//! sizes the on-chip tier to the hot vertex prefix a degree-profiling
//! pre-pass finds, keeping the window nearly full.
//!
//! Everything here is a **simulated-cycle** number — deterministic run
//! to run — so the `bench_check` baselines stay tight. CI uploads the
//! sweep as `BENCH_tiered_cache.json`; the gated headlines are the
//! workload split's mean on-chip hit rate, how many datasets it wins on
//! total cycles (the acceptance bar is at least two), and the mean
//! even/workload cycle ratio.

use gnnie_core::config::AcceleratorConfig;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;
use gnnie_mem::{SplitMode, TierSpec};

use crate::{Ctx, ExperimentResult, Table};

/// The capacity splits swept per dataset.
pub const SPLIT_MODES: [SplitMode; 2] = [SplitMode::Even, SplitMode::Workload];

/// The global tier budget for `dataset`: the paper configuration's
/// input-buffer size, so the on-chip share trades directly against the
/// walk's subgraph window.
pub fn budget_for(dataset: Dataset) -> u64 {
    AcceleratorConfig::paper(dataset).input_buffer_bytes as u64
}

/// One (dataset, split-mode) measurement.
#[derive(Debug, Clone)]
pub struct TieredRow {
    /// Table II dataset.
    pub dataset: Dataset,
    /// How the global budget was divided across tiers.
    pub mode: SplitMode,
    /// Global capacity budget the split divided (bytes).
    pub budget_bytes: u64,
    /// On-chip tier hit rate (hits over probes), summed across layers.
    pub onchip_hit_rate: f64,
    /// DRAM tier hit rate.
    pub dram_hit_rate: f64,
    /// Bytes read from the SSD backstop.
    pub ssd_read_bytes: u64,
    /// End-to-end simulated cycles.
    pub total_cycles: u64,
}

/// Runs the split sweep over every Table II dataset at the context's
/// scale (GCN, paper configuration).
pub fn sweep(ctx: &Ctx) -> Vec<TieredRow> {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        for mode in SPLIT_MODES {
            let mut cfg = AcceleratorConfig::paper(dataset);
            cfg.tiers = Some(TierSpec::Split { total_bytes: budget_for(dataset), mode });
            let report = ctx.run_gnnie_with(cfg, GnnModel::Gcn, dataset);
            let tiers = report.tier_stats();
            assert_eq!(tiers.len(), 3, "split specs resolve to onchip/dram/ssd");
            rows.push(TieredRow {
                dataset,
                mode,
                budget_bytes: budget_for(dataset),
                onchip_hit_rate: tiers[0].hit_rate(),
                dram_hit_rate: tiers[1].hit_rate(),
                ssd_read_bytes: tiers[2].read_bytes,
                total_cycles: report.total_cycles,
            });
        }
    }
    rows
}

/// Regenerates the tier-split table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    render(&sweep(ctx))
}

/// Renders an already-computed sweep (the bin reuses one sweep for the
/// table and the JSON artifact).
pub fn render(rows: &[TieredRow]) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "split",
        "budget KB",
        "on-chip hit",
        "DRAM hit",
        "SSD read B",
        "total cycles",
    ]);
    for r in rows {
        t.row(vec![
            r.dataset.abbrev().to_string(),
            r.mode.name().to_string(),
            (r.budget_bytes / 1024).to_string(),
            format!("{:.1}%", r.onchip_hit_rate * 100.0),
            format!("{:.1}%", r.dram_hit_rate * 100.0),
            r.ssd_read_bytes.to_string(),
            r.total_cycles.to_string(),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    let wins = rows
        .chunks(SPLIT_MODES.len())
        .filter(|pair| pair[1].total_cycles < pair[0].total_cycles)
        .count();
    lines.push(format!(
        "the workload-aware split beats the even split on total cycles on {wins} of {} \
         datasets: sizing the on-chip tier to the hot vertex prefix leaves the walk's \
         SRAM window nearly full, where the even split's oversized on-chip share \
         shrinks it and pays in evictions and deep-tier refetches",
        rows.len() / SPLIT_MODES.len(),
    ));
    ExperimentResult {
        id: "Tiered cache",
        title: "Tiered feature cache (workload-aware vs even capacity split)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_pairs_every_dataset_and_workload_wins_somewhere() {
        let ctx = Ctx::with_scale(0.02);
        let rows = sweep(&ctx);
        assert_eq!(rows.len(), Dataset::ALL.len() * SPLIT_MODES.len());
        for pair in rows.chunks(SPLIT_MODES.len()) {
            assert_eq!(pair[0].mode, SplitMode::Even);
            assert_eq!(pair[1].mode, SplitMode::Workload);
            assert_eq!(pair[0].dataset, pair[1].dataset);
            assert_eq!(pair[0].budget_bytes, pair[1].budget_bytes);
            for r in pair {
                assert!(r.total_cycles > 0);
                assert!((0.0..=1.0).contains(&r.onchip_hit_rate));
                assert!((0.0..=1.0).contains(&r.dram_hit_rate));
            }
        }
        let text = render(&rows).lines.join("\n");
        assert!(text.contains("workload") && text.contains("even"), "{text}");
    }
}
