//! Fig. 1 — GNN accuracy comparison (PPI micro-F1, data from the GAT
//! paper \[33\]).
//!
//! This is background motivating GNNIE's versatility (GATs are the most
//! accurate and most compute-hungry). GNNIE is an inference engine and
//! performs no training, so the figure reprints the literature values the
//! paper cites rather than re-deriving them.

use crate::{Ctx, ExperimentResult, Table};

/// PPI micro-F1 scores from Veličković et al. (ICLR 2018), Table 3 —
/// the data Fig. 1 plots.
pub const PPI_MICRO_F1: [(&str, f64); 6] = [
    ("MLP (no graph)", 0.422),
    ("GraphSAGE-GCN", 0.500),
    ("GraphSAGE-mean", 0.598),
    ("GraphSAGE-pool", 0.600),
    ("Const-GAT", 0.934),
    ("GAT", 0.973),
];

/// Regenerates the Fig. 1 rows.
pub fn run(_ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&["model", "PPI micro-F1 (literature)"]);
    for (name, f1) in PPI_MICRO_F1 {
        t.row(vec![name.to_string(), format!("{f1:.3}")]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "GATs top the accuracy ordering at the highest compute cost — the paper's \
         motivation for an accelerator that covers GATs (no training performed here; \
         values reprinted from the cited GAT paper)."
            .to_string(),
    );
    ExperimentResult { id: "Fig. 1", title: "GNN accuracy comparison (PPI)", lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_ordering_matches_figure() {
        // GAT > Const-GAT > GraphSAGE variants > MLP.
        let f1: Vec<f64> = PPI_MICRO_F1.iter().map(|(_, v)| *v).collect();
        assert!(f1.windows(2).all(|w| w[0] <= w[1]), "rows must be sorted ascending");
        assert_eq!(PPI_MICRO_F1.last().unwrap().0, "GAT");
    }

    #[test]
    fn produces_one_row_per_model() {
        let r = run(&Ctx::with_scale(0.05));
        // header + separator + 6 rows + blank + note.
        assert_eq!(r.lines.len(), 10);
    }
}
