//! Ingest-throughput sweep — file format × shard count, parallel CSR
//! build vs the serial `CsrGraph` path, plus the snapshot-cache payoff.
//!
//! Ingest is the throughput-critical path for real graphs (DGI/Ginex):
//! this sweep measures, on a power-law graph sized by `GNNIE_SCALE`,
//!
//! * **parse cost per text dialect** — whitespace/CSV/TSV streaming
//!   parse of the same edge set;
//! * **parallel build speedup** — `build_csr_parallel` at 1/2/4/8
//!   shards against `build_csr_serial` (the sort-based `CsrGraph`
//!   path), with bit-for-bit equality checked on every row;
//! * **cache payoff** — reading back the binary CSR file and the
//!   `.gnniecsr` snapshot vs re-parsing + rebuilding from text.
//!
//! Timings are the best of several repetitions (minimum is the right
//! statistic for cold-cache-free throughput claims on shared CI boxes).

use std::path::PathBuf;
use std::time::Instant;

use gnnie_graph::features::{generate_features, FeatureProfile};
use gnnie_graph::{generate, Dataset, GraphDataset, VertexId};
use gnnie_ingest::build::{build_csr_parallel, build_csr_serial};
use gnnie_ingest::chunked::build_csr_chunked;
use gnnie_ingest::export::{export_edge_list, write_binary_csr};
use gnnie_ingest::parse::{parse_edge_list, read_binary_csr, scan_edge_list};
use gnnie_ingest::snapshot::{open_snapshot, read_snapshot, write_snapshot};
use gnnie_ingest::EdgeListFormat;

use crate::{Ctx, ExperimentResult, Table};

/// Full-scale workload: ~40 k vertices / 400 k edges (GNNIE_SCALE
/// shrinks both linearly; CI runs at 0.1).
const BASE_VERTICES: usize = 40_000;
const BASE_EDGES: usize = 400_000;

/// Shard counts swept for the parallel builder.
pub const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One (format, shard-count) measurement.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// Text dialect parsed.
    pub format: EdgeListFormat,
    /// Shard count of the parallel build.
    pub shards: usize,
    /// Streaming parse time, ms (best of repeats).
    pub parse_ms: f64,
    /// Parallel build time, ms (best of repeats).
    pub build_ms: f64,
    /// Serial `CsrGraph` build time, ms (best of repeats).
    pub serial_build_ms: f64,
    /// `serial_build_ms / build_ms`.
    pub speedup: f64,
    /// Bit-for-bit equality of parallel and serial results.
    pub matches_serial: bool,
    /// Vertices in the benchmark graph.
    pub vertices: usize,
    /// Input pair count (one line per undirected edge).
    pub input_edges: usize,
}

/// One cached-format read measurement.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// `"binary csr"` or `"gnniecsr snapshot"`.
    pub kind: &'static str,
    /// Read-back time, ms (best of repeats).
    pub read_ms: f64,
    /// The text path it replaces: best parse + best 1-shard build, ms.
    pub text_path_ms: f64,
}

/// The out-of-core measurement: a large synthetic edge list built with
/// the chunked external builder (small spill chunks, never holding the
/// COO in memory), checked bit-for-bit against the in-memory build,
/// then frozen to a v3 snapshot whose (mmap-eligible) load is timed
/// against re-parsing the text.
#[derive(Debug, Clone)]
pub struct OutOfCoreRow {
    /// Vertices in the synthetic graph.
    pub vertices: usize,
    /// Input pair count (one line per undirected edge).
    pub input_edges: usize,
    /// Spill-chunk budget handed to the chunked builder, bytes.
    pub chunk_bytes: u64,
    /// Chunked external build (metadata pass + two streamed passes), ms.
    pub chunked_build_ms: f64,
    /// In-memory parse + parallel build, ms.
    pub inmem_build_ms: f64,
    /// Bit-for-bit equality of chunked and in-memory results.
    pub bit_identical: bool,
    /// `.gnniecsr` v3 snapshot load time, ms (best of repeats).
    pub snapshot_load_ms: f64,
    /// Re-parse + rebuild time the snapshot replaces, ms.
    pub reparse_ms: f64,
    /// `reparse_ms / snapshot_load_ms`.
    pub load_speedup_vs_reparse: f64,
    /// Whether the snapshot load was zero-copy (mmap).
    pub mmap: bool,
}

/// The sweep outcome: per-(format, shards) rows plus cache rows.
#[derive(Debug, Clone)]
pub struct IngestSweep {
    /// format × shard measurements.
    pub rows: Vec<IngestRow>,
    /// Cached-format read-back measurements.
    pub cache: Vec<CacheRow>,
    /// The out-of-core chunked-build + snapshot-load measurement.
    pub outofcore: OutOfCoreRow,
}

fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out.expect("reps >= 1"), best)
}

/// Runs the full sweep, staging files in a private temp directory.
pub fn sweep(ctx: &Ctx) -> IngestSweep {
    let scale = ctx.scale_for(Dataset::Pubmed).clamp(0.001, 1.0);
    let vertices = ((BASE_VERTICES as f64 * scale) as usize).max(64);
    let edges = ((BASE_EDGES as f64 * scale) as usize).max(256);
    let graph = generate::powerlaw_chung_lu(vertices, edges, 2.0, ctx.seed());
    let features =
        generate_features(vertices, 64, FeatureProfile::Unimodal { mean: 8.0 }, ctx.seed());
    let mut spec = Dataset::Pubmed.spec();
    spec.vertices = graph.num_vertices();
    spec.edges = graph.num_edges();
    spec.feature_len = 64;
    let ds = GraphDataset::from_parts(spec, graph, features);

    let dir = stage_dir();
    std::fs::create_dir_all(&dir).expect("create bench temp dir");

    let mut rows = Vec::new();
    let mut text_path_ms = f64::INFINITY;
    let n = ds.graph.num_vertices();
    let mut canonical_pairs: Option<Vec<(VertexId, VertexId)>> = None;
    for format in EdgeListFormat::ALL {
        let path = dir.join(format!("bench.{}", format.extension()));
        export_edge_list(&path, &ds.graph, format, None).expect("export");
        let (parsed, parse_ms) = best_ms(3, || parse_edge_list(&path, format).expect("parse"));
        let pairs = parsed.pairs;
        let (serial, serial_build_ms) =
            best_ms(3, || build_csr_serial(n, &pairs).expect("serial build").0);
        assert_eq!(serial, ds.graph, "parse must reproduce the exported graph");
        for shards in SHARD_SWEEP {
            let (parallel, build_ms) =
                best_ms(3, || build_csr_parallel(n, &pairs, shards).expect("parallel build").0);
            rows.push(IngestRow {
                format,
                shards,
                parse_ms,
                build_ms,
                serial_build_ms,
                speedup: serial_build_ms / build_ms.max(1e-9),
                matches_serial: parallel == serial,
                vertices: n,
                input_edges: pairs.len(),
            });
            // Matches the CacheRow doc: best parse + best *1-shard* build.
            if shards == 1 {
                text_path_ms = text_path_ms.min(parse_ms + build_ms);
            }
        }
        if canonical_pairs.is_none() {
            canonical_pairs = Some(pairs);
        }
        std::fs::remove_file(&path).ok();
    }

    // Cached formats: read-back vs the best text parse+build path.
    let mut cache = Vec::new();
    let bcsr = dir.join("bench.bcsr");
    write_binary_csr(&bcsr, &ds.graph).expect("write bcsr");
    let (bin_graph, bin_ms) = best_ms(3, || read_binary_csr(&bcsr).expect("read bcsr"));
    assert_eq!(bin_graph, ds.graph);
    cache.push(CacheRow { kind: "binary csr", read_ms: bin_ms, text_path_ms });
    let snap = dir.join("bench.gnniecsr");
    write_snapshot(&snap, &ds, true).expect("write snapshot");
    let (reloaded, snap_ms) = best_ms(3, || read_snapshot(&snap).expect("read snapshot"));
    assert_eq!(reloaded.graph, ds.graph);
    assert_eq!(reloaded.features, ds.features);
    cache.push(CacheRow { kind: "gnniecsr snapshot", read_ms: snap_ms, text_path_ms });

    std::fs::remove_dir_all(&dir).ok();
    IngestSweep { rows, cache, outofcore: outofcore(ctx) }
}

/// Full-scale out-of-core workload: >10M input edges (GNNIE_SCALE
/// shrinks it linearly; `GNNIE_OUTOFCORE_EDGES` overrides it outright).
const BASE_OUTOFCORE_EDGES: usize = 10_500_000;

/// Runs the out-of-core measurement: chunked external build vs the
/// in-memory path on the same text file, then v3 snapshot load vs
/// re-parse.
pub fn outofcore(ctx: &Ctx) -> OutOfCoreRow {
    let edges = std::env::var("GNNIE_OUTOFCORE_EDGES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            let scale = ctx.scale_for(Dataset::Pubmed).clamp(0.001, 1.0);
            ((BASE_OUTOFCORE_EDGES as f64 * scale) as usize).max(30_000)
        });
    let vertices = (edges / 10).max(1_024);
    // ~24 spill buckets at any size: the scatter stream is
    // 2 directions x 8 bytes per input pair.
    let chunk_bytes = (edges as u64 * 16 / 24).max(4_096);
    let graph = generate::powerlaw_chung_lu(vertices, edges, 2.0, ctx.seed());

    let dir =
        std::env::temp_dir().join(format!("gnnie-outofcore-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("outofcore.edges");
    let format = EdgeListFormat::Whitespace;
    export_edge_list(&path, &graph, format, None).expect("export");

    // Large inputs get one repetition (the interesting regime is tens
    // of millions of edges, where repeats would dominate bench time).
    let reps = if edges > 2_000_000 { 1 } else { 2 };

    // The chunked path never materializes the COO: a metadata pass to
    // learn |V|, then the degree-count and scatter passes re-stream the
    // text through spill chunks of `chunk_bytes`.
    let (chunked, chunked_build_ms) = best_ms(reps, || {
        let meta = scan_edge_list(&path, format, |_, _| {}).expect("scan");
        build_csr_chunked(meta.num_vertices(), chunk_bytes, None, |sink| {
            scan_edge_list(&path, format, sink).map(|_| ())
        })
        .expect("chunked build")
        .0
    });

    let (inmem, inmem_build_ms) = best_ms(reps, || {
        let parsed = parse_edge_list(&path, format).expect("parse");
        build_csr_parallel(parsed.num_vertices(), &parsed.pairs, 4).expect("parallel build").0
    });
    let bit_identical = chunked == inmem && chunked == graph;

    // Freeze a v3 snapshot (graph + features + partition tables) and
    // time loading it back — zero-copy via mmap where supported —
    // against the text path it replaces.
    let features = generate_features(vertices, 32, FeatureProfile::Unimodal { mean: 4.0 }, 7);
    let mut spec = Dataset::Pubmed.spec();
    spec.vertices = graph.num_vertices();
    spec.edges = graph.num_edges();
    spec.feature_len = 32;
    let ds = GraphDataset::from_parts(spec, graph, features);
    let snap = dir.join("outofcore.gnniecsr");
    write_snapshot(&snap, &ds, true).expect("write snapshot");
    let (load, snapshot_load_ms) = best_ms(3, || open_snapshot(&snap).expect("open snapshot"));
    assert_eq!(load.dataset.graph, ds.graph, "snapshot must reproduce the graph");
    let mmap = load.mmap;

    let (_, reparse_ms) = best_ms(reps, || {
        let parsed = parse_edge_list(&path, format).expect("parse");
        build_csr_parallel(parsed.num_vertices(), &parsed.pairs, 4).expect("parallel build").0
    });

    std::fs::remove_dir_all(&dir).ok();
    OutOfCoreRow {
        vertices,
        input_edges: edges,
        chunk_bytes,
        chunked_build_ms,
        inmem_build_ms,
        bit_identical,
        snapshot_load_ms,
        reparse_ms,
        load_speedup_vs_reparse: reparse_ms / snapshot_load_ms.max(1e-9),
        mmap,
    }
}

fn stage_dir() -> PathBuf {
    std::env::temp_dir().join(format!("gnnie-ingest-bench-{}", std::process::id()))
}

/// Regenerates the ingest-throughput table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    render(&sweep(ctx))
}

/// Renders an already-computed sweep (the bin reuses one sweep for the
/// table and the JSON artifact).
pub fn render(sweep: &IngestSweep) -> ExperimentResult {
    let mut t = Table::new(&[
        "format",
        "shards",
        "parse ms",
        "build ms",
        "serial ms",
        "speedup",
        "bit-identical",
        "|V|",
        "lines",
    ]);
    for r in &sweep.rows {
        t.row(vec![
            r.format.to_string(),
            r.shards.to_string(),
            format!("{:.2}", r.parse_ms),
            format!("{:.2}", r.build_ms),
            format!("{:.2}", r.serial_build_ms),
            format!("{:.2}x", r.speedup),
            if r.matches_serial { "yes".into() } else { "NO".into() },
            r.vertices.to_string(),
            r.input_edges.to_string(),
        ]);
    }
    let mut lines = t.render();
    lines.push(String::new());
    for c in &sweep.cache {
        lines.push(format!(
            "{:18} read-back {:>8.2} ms vs {:>8.2} ms best text parse+build ({:.1}x)",
            c.kind,
            c.read_ms,
            c.text_path_ms,
            c.text_path_ms / c.read_ms.max(1e-9)
        ));
    }
    lines.push(String::new());
    let oc = &sweep.outofcore;
    lines.push(format!(
        "out-of-core: {} edges / {} vertices, chunked build ({:.1} MB spill chunks) \
         {:.1} ms vs {:.1} ms in-memory, bit-identical: {}",
        oc.input_edges,
        oc.vertices,
        oc.chunk_bytes as f64 / (1 << 20) as f64,
        oc.chunked_build_ms,
        oc.inmem_build_ms,
        if oc.bit_identical { "yes" } else { "NO" },
    ));
    lines.push(format!(
        "             snapshot-v3 load {:>8.2} ms{} vs {:>8.2} ms re-parse+build ({:.1}x)",
        oc.snapshot_load_ms,
        if oc.mmap { " (mmap)" } else { "" },
        oc.reparse_ms,
        oc.load_speedup_vs_reparse,
    ));
    lines.push(String::new());
    lines.push(
        "the sharded counting-sort builder replaces the serial sort-based path \
         (O(E) passes vs O(E log E)); every row is checked bit-for-bit against \
         the serial result, and the .gnniecsr snapshot amortizes parsing to one \
         checksummed read"
            .to_string(),
    );
    ExperimentResult {
        id: "Ingest",
        title: "Real-graph ingestion throughput (gnnie-ingest)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_are_bit_identical_and_complete() {
        let ctx = Ctx::with_scale(0.02);
        let s = sweep(&ctx);
        assert_eq!(s.rows.len(), EdgeListFormat::ALL.len() * SHARD_SWEEP.len());
        for r in &s.rows {
            assert!(r.matches_serial, "{} @ {} shards diverged", r.format, r.shards);
            assert!(r.parse_ms >= 0.0 && r.build_ms >= 0.0);
            assert!(r.speedup.is_finite());
        }
        assert_eq!(s.cache.len(), 2);
        for c in &s.cache {
            assert!(c.read_ms > 0.0, "{} read not timed", c.kind);
        }
    }

    #[test]
    fn outofcore_row_is_bit_identical_at_tiny_chunks() {
        // A small graph with a deliberately tiny spill budget so the
        // chunked builder exercises many buckets even under `cargo
        // test`; CI's release-mode bench run covers the >10M-edge
        // regime via GNNIE_SCALE.
        std::env::set_var("GNNIE_OUTOFCORE_EDGES", "30000");
        let r = outofcore(&Ctx::with_scale(0.01));
        std::env::remove_var("GNNIE_OUTOFCORE_EDGES");
        assert_eq!(r.input_edges, 30_000);
        assert!(r.bit_identical, "chunked build diverged from the in-memory path");
        assert!(r.chunk_bytes >= 4_096);
        assert!(r.snapshot_load_ms > 0.0 && r.reparse_ms > 0.0);
        assert!(r.load_speedup_vs_reparse.is_finite());
        assert_eq!(r.mmap, gnnie_ingest::mmap_supported());
    }
}
