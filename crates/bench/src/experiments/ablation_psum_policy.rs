//! Ablation — output-buffer psum retention policy (§VI).
//!
//! The paper keeps partial sums for high-degree vertices in the output
//! buffer and spills the rest ("we use a degree-based criterion for
//! prioritizing writes to the output buffer vs. DRAM"), and §VII argues
//! the same idea against GRASP's most-recently-used history: degree
//! measures *future* update potential where recency measures the past.
//! This sweep replays the exact cache-driven edge order through three
//! retention policies — the paper's degree priority, LRU (the GRASP-style
//! counterfactual), and FIFO — at several psum-buffer capacities, and
//! reports hit rate and spill/refetch DRAM traffic.

use gnnie_graph::reorder::Permutation;
use gnnie_graph::Dataset;
use gnnie_mem::psum::{simulate_psum_traffic, RetentionPolicy};
use gnnie_mem::CacheConfig;

use crate::{table::fmt_count, Ctx, ExperimentResult, Table};

/// Psum-buffer capacities swept (vertices; the paper's 1 MB output buffer
/// holds ~2048 psums at 128 × 4 B).
pub const CAPACITY_SWEEP: [usize; 3] = [512, 2048, 8192];

/// Bytes per spilled/refetched psum vector (F_out = 128 floats).
pub const PSUM_BYTES: u64 = 128 * 4;

/// Datasets swept.
pub const DATASETS: [Dataset; 3] = [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed];

/// Stats for one (dataset, policy, capacity) point.
pub fn point(
    ctx: &Ctx,
    dataset: Dataset,
    policy: RetentionPolicy,
    capacity: usize,
) -> gnnie_mem::PsumStats {
    let ds = ctx.dataset(dataset);
    let ordered = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
    // Input-buffer capacity mirrors the paper config: the psum study only
    // depends on the edge order it induces.
    let cache_cfg = CacheConfig::with_capacity(1024.min(ordered.num_vertices().max(2)), 64);
    simulate_psum_traffic(&ordered, cache_cfg, policy, capacity)
}

/// Regenerates the ablation table.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut t = Table::new(&[
        "dataset",
        "psum slots",
        "policy",
        "hit rate",
        "spills",
        "refetches",
        "DRAM KiB",
    ]);
    for dataset in DATASETS {
        for capacity in CAPACITY_SWEEP {
            for policy in RetentionPolicy::ALL {
                let s = point(ctx, dataset, policy, capacity);
                t.row(vec![
                    format!("{dataset:?}"),
                    capacity.to_string(),
                    policy.to_string(),
                    format!("{:.1}%", s.hit_rate() * 100.0),
                    fmt_count(s.spill_writes),
                    fmt_count(s.refetches),
                    fmt_count(s.dram_bytes(PSUM_BYTES) / 1024),
                ]);
            }
        }
    }
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "the paper's degree criterion keeps the psums with the most future \
         updates resident, beating recency (LRU/GRASP-style) and FIFO on \
         spill traffic wherever the buffer is tight and the degree \
         distribution is skewed — §VI's retention rule and §VII's argument \
         against history-based caching, quantified"
            .to_string(),
    );
    ExperimentResult {
        id: "Ablation A9",
        title: "Output-buffer psum retention policy (§VI)",
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_priority_never_loses_on_tight_buffers() {
        let ctx = Ctx::with_scale(0.25);
        for dataset in DATASETS {
            let dp = point(&ctx, dataset, RetentionPolicy::DegreePriority, 256);
            let fifo = point(&ctx, dataset, RetentionPolicy::Fifo, 256);
            assert!(
                dp.dram_bytes(PSUM_BYTES) <= fifo.dram_bytes(PSUM_BYTES),
                "{dataset:?}: {dp:?} vs {fifo:?}"
            );
        }
    }

    #[test]
    fn bigger_psum_buffers_spill_less() {
        let ctx = Ctx::with_scale(0.25);
        let small = point(&ctx, Dataset::Pubmed, RetentionPolicy::DegreePriority, 256);
        let large = point(&ctx, Dataset::Pubmed, RetentionPolicy::DegreePriority, 4096);
        assert!(large.spill_writes <= small.spill_writes);
        assert!(large.hit_rate() >= small.hit_rate());
    }

    #[test]
    fn accesses_are_policy_invariant() {
        let ctx = Ctx::with_scale(0.2);
        let a = point(&ctx, Dataset::Cora, RetentionPolicy::DegreePriority, 512);
        let b = point(&ctx, Dataset::Cora, RetentionPolicy::Lru, 512);
        let c = point(&ctx, Dataset::Cora, RetentionPolicy::Fifo, 512);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(b.accesses, c.accesses);
    }

    #[test]
    fn table_covers_every_combination() {
        let ctx = Ctx::with_scale(0.1);
        let r = run(&ctx);
        // header + separator + 3 datasets x 3 capacities x 3 policies + 2.
        assert_eq!(r.lines.len(), 2 + 27 + 2);
    }
}
