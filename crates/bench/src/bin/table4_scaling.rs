//! Regenerates the extension table; see `gnnie_bench::experiments::table4_scaling`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::table4_scaling::run(&ctx).print();
}
