//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig17_beta_designs`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig17_beta_designs::run(&ctx).print();
}
