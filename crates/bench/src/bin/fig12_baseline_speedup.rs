//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig12_baseline_speedup`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig12_baseline_speedup::run(&ctx).print();
}
