//! Regenerates the parallel-simulation speedup sweep; see
//! `gnnie_bench::experiments::parallel_speedup`.
//!
//! With `--json <path>`, additionally writes the sweep as a JSON array —
//! CI uploads it as the `BENCH_parallel_speedup.json` artifact and the
//! `bench_check` gate compares its headline metrics (bit-identity across
//! thread counts, best wall-clock speedup) against
//! `bench/baselines/parallel_speedup.json`.

use gnnie_bench::experiments::parallel_speedup;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: parallel_speedup [--json <path>] (got {other:?})");
            std::process::exit(2);
        }
    };

    let ctx = gnnie_bench::Ctx::from_env();
    // One sweep feeds both the printed table and the JSON artifact.
    let rows = parallel_speedup::sweep(&ctx);
    parallel_speedup::render(&rows).print();

    if rows.iter().any(|r| !r.identical) {
        eprintln!("error: a sharded run diverged from the serial report (see table)");
        std::process::exit(1);
    }

    if let Some(path) = json_path {
        let json = render_json(&rows);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[parallel_speedup: wrote {path}]");
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline no-op shim):
/// every value is a number or a known identifier, so no escaping is
/// needed.
fn render_json(rows: &[parallel_speedup::SpeedupRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\": \"{}\", \"threads\": {}, \"run_ms\": {:.4}, \
             \"serial_ms\": {:.4}, \"speedup_vs_serial\": {:.4}, \"identical\": {}, \
             \"total_cycles\": {}}}{}\n",
            r.dataset.abbrev(),
            r.threads,
            r.run_ms,
            r.serial_ms,
            r.speedup,
            r.identical,
            r.total_cycles,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}
