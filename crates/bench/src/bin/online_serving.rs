//! Regenerates the online-serving sweep; see
//! `gnnie_bench::experiments::online_serving`.
//!
//! With `--json <path>`, additionally writes the sweep as a JSON
//! document — CI uploads it as the `BENCH_online_serving.json` artifact
//! and gates it with `bench_check` (every metric here is simulated
//! cycles, so the committed baselines are tight).

use gnnie_bench::experiments::online_serving;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: online_serving [--json <path>] (got {other:?})");
            std::process::exit(2);
        }
    };

    let ctx = gnnie_bench::Ctx::from_env();
    // One sweep feeds both the printed table and the JSON artifact.
    let result = online_serving::sweep(&ctx);
    online_serving::render(&result).print();

    if let Some(path) = json_path {
        let json = render_json(&result);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[online_serving: wrote {path}]");
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline no-op shim):
/// every value is a number or a known identifier, so no escaping is
/// needed.
fn render_json(result: &online_serving::OnlineServingResult) -> String {
    let mut out = String::from("{\n  \"sweep\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        let r = &row.report;
        out.push_str(&format!(
            "    {{\"rate_factor\": {:.4}, \"rate_rps\": {:.1}, \"served\": {}, \
             \"rejected\": {}, \"batches\": {}, \"p50_latency_us\": {:.3}, \
             \"p95_latency_us\": {:.3}, \"p99_latency_us\": {:.3}, \
             \"deadline_hit_rate\": {:.4}, \"throughput_rps\": {:.1}, \
             \"sustained\": {}}}{}\n",
            row.factor,
            row.rate_rps,
            r.outcomes.len(),
            r.rejected.len(),
            r.batches.len(),
            r.p50_latency_s() * 1e6,
            r.p95_latency_s() * 1e6,
            r.p99_latency_s() * 1e6,
            r.deadline_hit_rate(),
            r.throughput_rps(),
            row.sustained,
            if i + 1 == result.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"service_rate_rps\": {:.1},\n  \"p99_bound_us\": {:.3},\n  \
         \"sustained_rps_at_p99\": {:.1},\n  \"static_pipelined_cycles\": {},\n  \
         \"online_makespan_cycles\": {},\n  \"daemon_vs_static_cycle_ratio\": {:.4}\n}}\n",
        result.service_rate_rps,
        result.p99_bound_s * 1e6,
        result.sustained_rps_at_p99,
        result.static_pipelined_cycles,
        result.online_makespan_cycles,
        result.daemon_vs_static_cycle_ratio,
    ));
    out
}
