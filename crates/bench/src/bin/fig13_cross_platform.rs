//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig13_cross_platform`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig13_cross_platform::run(&ctx).print();
}
