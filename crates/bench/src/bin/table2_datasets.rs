//! Regenerates the paper artifact; see `gnnie_bench::experiments::table2_datasets`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::table2_datasets::run(&ctx).print();
}
