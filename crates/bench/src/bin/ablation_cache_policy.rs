//! Regenerates the ablation; see `gnnie_bench::experiments::ablation_cache_policy`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::ablation_cache_policy::run(&ctx).print();
}
