//! `trace_check` — validate `gnnie run --trace` output as well-formed
//! Chrome trace-event JSON (see `gnnie_bench::trace`).
//!
//! ```text
//! trace_check <trace.json>...
//! ```
//!
//! CI runs this over the trace it generates before uploading it as an
//! artifact: a malformed export fails the job (exit 1) instead of
//! shipping a file Perfetto cannot load. Valid files print a one-line
//! content summary.

use gnnie_bench::trace::validate_chrome_trace;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!(
            "error: at least one trace file is required\nusage: trace_check <trace.json>..."
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        match std::fs::read_to_string(file)
            .map_err(|e| format!("read: {e}"))
            .and_then(|text| validate_chrome_trace(&text))
        {
            Ok(summary) => println!("{file}: OK — {}", summary.render()),
            Err(e) => {
                eprintln!("error: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
