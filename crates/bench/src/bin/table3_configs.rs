//! Regenerates the paper artifact; see `gnnie_bench::experiments::table3_configs`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::table3_configs::run(&ctx).print();
}
