//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig16_weighting_balance`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig16_weighting_balance::run(&ctx).print();
}
