//! Regenerates the ablation; see `gnnie_bench::experiments::ablation_comm`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::ablation_comm::run(&ctx).print();
}
