//! Regenerates the ablation; see `gnnie_bench::experiments::ablation_lut`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::ablation_lut::run(&ctx).print();
}
