//! Regenerates the ablation; see `gnnie_bench::experiments::ablation_psum`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::ablation_psum::run(&ctx).print();
}
