//! Runs every experiment of the paper's evaluation section in order,
//! printing each table/figure with paper-reported reference values.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    let t0 = std::time::Instant::now();
    for (_, runner) in gnnie_bench::all_experiments() {
        runner(&ctx).print();
    }
    eprintln!("[run_all completed in {:.1} s]", t0.elapsed().as_secs_f64());
}
