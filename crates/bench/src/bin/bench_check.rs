//! `bench_check` — the CI perf-regression gate over the `BENCH_*.json`
//! trajectory (see `gnnie_bench::gate`).
//!
//! ```text
//! bench_check [--baseline-dir bench/baselines] [--tolerance 0.10]
//!             [--write-baselines] <BENCH_artifact.json>...
//! ```
//!
//! For each artifact: reduce it to its headline metrics, compare them
//! against the checked-in baseline, and print the per-metric delta
//! table. Any metric more than the tolerance below its baseline fails
//! the run (exit 1). `--write-baselines` instead rewrites the baseline
//! files from the fresh artifacts — the README's workflow for
//! intentional trajectory changes.

use gnnie_bench::gate;
use gnnie_bench::json::Json;

fn main() {
    let mut baseline_dir = String::from("bench/baselines");
    let mut tolerance = gate::DEFAULT_TOLERANCE;
    let mut write_baselines = false;
    let mut artifacts: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-dir" => match args.next() {
                Some(dir) => baseline_dir = dir,
                None => usage_exit("--baseline-dir needs a value"),
            },
            "--tolerance" => match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 0.0 && t < 1.0 => tolerance = t,
                _ => usage_exit("--tolerance needs a fraction in (0, 1)"),
            },
            "--write-baselines" => write_baselines = true,
            other if other.starts_with("--") => usage_exit(&format!("unknown flag `{other}`")),
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        usage_exit("at least one BENCH_*.json artifact is required");
    }

    // On a one-core runner the multi-thread/multi-shard wall-clock
    // speedups are physically unreachable (forced workers only add
    // overhead), so wall-clock rows become informational there; the
    // deterministic simulated-cycle metrics still gate.
    let single_core = std::thread::available_parallelism().map_or(true, |n| n.get() == 1);

    let mut failed = false;
    for artifact in &artifacts {
        match check_one(artifact, &baseline_dir, tolerance, write_baselines, single_core) {
            Ok(regressed) => failed |= regressed,
            Err(e) => {
                eprintln!("error: {artifact}: {e}");
                failed = true;
            }
        }
        println!();
    }
    if failed {
        eprintln!(
            "bench gate FAILED: a headline metric regressed more than {:.0}% \
             (rerun the benches and, if the change is intentional, refresh \
             bench/baselines with --write-baselines)",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench gate OK: every headline metric within {:.0}%", tolerance * 100.0);
}

/// Gates one artifact; returns whether it regressed.
fn check_one(
    artifact: &str,
    baseline_dir: &str,
    tolerance: f64,
    write_baselines: bool,
    single_core: bool,
) -> Result<bool, String> {
    let text = std::fs::read_to_string(artifact).map_err(|e| format!("read: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("parse: {e}"))?;
    let current = gate::headline_metrics(artifact, &json)?;
    let baseline_path = format!("{baseline_dir}/{}", gate::baseline_file_for(artifact)?);

    if write_baselines {
        // Wall-clock baselines are frozen once committed: never raised (a
        // fast dev box would bake in a number shared CI runners can never
        // meet) and never lowered (one slow CI box would silently erode
        // the gate). Changing them is a manual edit of the baseline file.
        // Deterministic metrics are refreshed verbatim.
        let mut to_write = current.clone();
        let prev = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|text| gate::parse_baseline(&text).ok())
            .unwrap_or_default();
        for m in &mut to_write {
            if !gate::is_wall_clock(&m.name) {
                continue;
            }
            if let Some(p) = prev.iter().find(|b| b.name == m.name) {
                if p.value != m.value {
                    println!(
                        "  {}: keeping frozen wall-clock baseline {:.4} \
                         (measured {:.4}; change it by editing {})",
                        m.name, p.value, m.value, baseline_path
                    );
                }
                m.value = p.value;
            }
        }
        std::fs::write(&baseline_path, gate::render_baseline(artifact, &to_write))
            .map_err(|e| format!("write {baseline_path}: {e}"))?;
        // Say what the refresh actually changed (old -> new, added,
        // removed, unchanged) instead of rewriting silently.
        println!("{artifact}: wrote {baseline_path}");
        for line in gate::render_refresh_summary(&prev, &to_write) {
            println!("{line}");
        }
        return Ok(false);
    }

    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!("read baseline {baseline_path}: {e} (commit one with --write-baselines)")
    })?;
    let baseline =
        gate::parse_baseline(&baseline_text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let mut deltas = gate::compare(&baseline, &current, tolerance);
    if single_core {
        for name in gate::demote_wall_clock_regressions(&mut deltas) {
            println!(
                "  {name}: single-core runner — wall-clock row reported \
                 informationally, not gated"
            );
        }
    }
    for line in gate::render_deltas(artifact, &deltas, tolerance) {
        println!("{line}");
    }
    Ok(deltas.iter().any(|d| d.regressed))
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: bench_check [--baseline-dir DIR] [--tolerance F] \
         [--write-baselines] <BENCH_artifact.json>..."
    );
    std::process::exit(2);
}
