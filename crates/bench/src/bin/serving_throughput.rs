//! Regenerates the serving-throughput sweep; see
//! `gnnie_bench::experiments::serving_throughput`.
//!
//! With `--json <path>`, additionally writes the sweep as a JSON array —
//! CI uploads it as the `BENCH_serving_throughput.json` artifact so the
//! serving numbers are a recorded perf trajectory, not a claim.

use gnnie_bench::experiments::serving_throughput;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: serving_throughput [--json <path>] (got {other:?})");
            std::process::exit(2);
        }
    };

    let ctx = gnnie_bench::Ctx::from_env();
    // One sweep feeds both the printed table and the JSON artifact.
    let rows = serving_throughput::sweep(&ctx);
    serving_throughput::render(&rows).print();

    if let Some(path) = json_path {
        let json = render_json(&rows);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[serving_throughput: wrote {path}]");
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline no-op shim):
/// every value is a number or a known identifier, so no escaping is
/// needed.
fn render_json(rows: &[serving_throughput::SweepRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        out.push_str(&format!(
            "  {{\"mix\": \"{}\", \"policy\": \"{}\", \"max_batch\": {}, \"batches\": {}, \
             \"requests\": {}, \"pipelined_total_cycles\": {}, \"batched_serial_cycles\": {}, \
             \"serial_total_cycles\": {}, \"speedup_vs_serial\": {:.4}, \
             \"weight_load_cycles_saved\": {}, \"p50_latency_us\": {:.3}, \
             \"p95_latency_us\": {:.3}, \"throughput_inferences_per_s\": {:.1}}}{}\n",
            row.mix,
            row.policy,
            row.max_batch,
            r.batches.len(),
            r.requests.len(),
            r.pipelined_total_cycles,
            r.batched_serial_cycles,
            r.serial_total_cycles,
            r.speedup_vs_serial(),
            r.weight_load_cycles_saved,
            r.p50_latency_s() * 1e6,
            r.p95_latency_s() * 1e6,
            r.throughput_inferences_per_s(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}
