//! Calibration matrix: GNNIE vs every baseline, per model and dataset.
//! Used to sanity-check the FIT constants in `gnnie-baselines::calib`
//! against the paper's reported speedup shape.

use gnnie_baselines::{AwbGcnModel, HygcnModel, PygCpuModel, PygGpuModel};
use gnnie_bench::Ctx;
use gnnie_gnn::flops::ModelWorkload;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

fn main() {
    let ctx = Ctx::from_env();
    println!(
        "{:5} {:10} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "ds", "model", "GNNIE", "cpu/x", "gpu/x", "hygcn/x", "awb/x"
    );
    for dataset in Dataset::ALL {
        for model in GnnModel::ALL {
            let r = ctx.run_gnnie(model, dataset);
            let ds = ctx.dataset(dataset);
            let cfg = ctx.model_config(model, dataset);
            let w = ModelWorkload::for_dataset(&cfg, &ds);
            let ratio = |l: f64| format!("{:.1}", l / r.latency_s);
            println!(
                "{:5} {:10} {:>9.1} us {:>10} {:>10} {:>9} {:>9}",
                dataset.abbrev(),
                model.name(),
                r.latency_s * 1e6,
                ratio(PygCpuModel::new().run(&w).latency_s),
                ratio(PygGpuModel::new().run(&w).latency_s),
                HygcnModel::new().run(&w).map(|b| ratio(b.latency_s)).unwrap_or("--".into()),
                AwbGcnModel::new().run(&w).map(|b| ratio(b.latency_s)).unwrap_or("--".into()),
            );
        }
    }
}
