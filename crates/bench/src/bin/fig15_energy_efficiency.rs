//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig15_energy_efficiency`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig15_energy_efficiency::run(&ctx).print();
}
