//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig10_alpha_rounds`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig10_alpha_rounds::run(&ctx).print();
}
