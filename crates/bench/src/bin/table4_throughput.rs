//! Regenerates the paper artifact; see `gnnie_bench::experiments::table4_throughput`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::table4_throughput::run(&ctx).print();
}
