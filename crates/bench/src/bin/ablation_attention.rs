//! Regenerates the ablation; see `gnnie_bench::experiments::ablation_attention`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::ablation_attention::run(&ctx).print();
}
