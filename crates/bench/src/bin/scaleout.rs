//! Regenerates the multi-accelerator scale-out sweep; see
//! `gnnie_bench::experiments::scaleout`.
//!
//! With `--json <path>`, additionally writes the sweep as JSON — CI
//! uploads it as the `BENCH_scaleout.json` artifact and the `bench_check`
//! gate compares its headline metrics (4-chip speedup, and how many
//! datasets scale at 4 chips) against `bench/baselines/scaleout.json`.
//! Every gated number is simulated cycles, deterministic run to run.

use gnnie_bench::experiments::scaleout;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: scaleout [--json <path>] (got {other:?})");
            std::process::exit(2);
        }
    };

    let ctx = gnnie_bench::Ctx::from_env();
    // One sweep feeds both the printed table and the JSON artifact.
    let rows = scaleout::sweep(&ctx);
    let cuts = scaleout::cut_quality(&ctx);
    scaleout::render(&rows, &cuts).print();

    if let Some(path) = json_path {
        let json = render_json(&rows, &cuts);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[scaleout: wrote {path}]");
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline no-op shim):
/// every value is a number or a known identifier, so no escaping is
/// needed.
fn render_json(rows: &[scaleout::ScaleoutRow], cuts: &[scaleout::CutRow]) -> String {
    let mut out = String::from("{\n  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"chips\": {}, \"total_cycles\": {}, \
             \"speedup_vs_single_chip\": {:.4}, \"inter_chip_bytes\": {}, \
             \"inter_chip_cycles\": {}}}{}\n",
            r.dataset.abbrev(),
            r.chips,
            r.total_cycles,
            r.speedup,
            r.inter_chip_bytes,
            r.inter_chip_cycles,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"cut_quality\": [\n");
    for (i, c) in cuts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"partitioner\": \"{}\", \"cut_edges\": {}, \
             \"halo_vertices\": {}, \"total_edges\": {}}}{}\n",
            c.dataset.abbrev(),
            c.partitioner.name(),
            c.cut_edges,
            c.halo_vertices,
            c.total_edges,
            if i + 1 == cuts.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
