//! Debug: per-phase cycle breakdown (temporary diagnostic).
use gnnie_bench::Ctx;
use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;

fn main() {
    let ctx = Ctx::from_env();
    for dataset in [Dataset::Pubmed, Dataset::Ppi, Dataset::Reddit] {
        let r = ctx.run_gnnie(GnnModel::Gcn, dataset);
        println!(
            "== {} GCN: total {} cycles ({:.1} us), V={} E={}",
            dataset.abbrev(),
            r.total_cycles,
            r.latency_s * 1e6,
            r.vertices,
            r.edges
        );
        println!(
            "   preprocessing {}  writeback {}",
            r.preprocessing_cycles, r.writeback_cycles
        );
        for l in &r.layers {
            let w = &l.weighting;
            let a = &l.aggregation;
            println!("   L{} weighting: total {} compute {} dram {} stalls {} lr_ovh {} passes {} pass_cycles {}",
                l.layer, w.total_cycles, w.compute_cycles, w.dram_cycles, w.mpe_stall_cycles, w.lr_overhead_cycles, w.passes, w.pass_cycles);
            println!("      aggregation: total {} compute {} dram {} stall {} attn {} iters {:?} rounds {:?} refetch {:?}",
                a.total_cycles, a.compute_cycles, a.dram_cycles, a.stall_cycles, a.attention_cycles,
                a.cache.as_ref().map(|c| c.iterations), a.cache.as_ref().map(|c| c.rounds), a.cache.as_ref().map(|c| c.refetches));
        }
    }
}
