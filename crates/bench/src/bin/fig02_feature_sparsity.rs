//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig02_feature_sparsity`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig02_feature_sparsity::run(&ctx).print();
}
