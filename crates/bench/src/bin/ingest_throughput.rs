//! Regenerates the ingest-throughput sweep; see
//! `gnnie_bench::experiments::ingest_throughput`.
//!
//! With `--json <path>`, additionally writes the sweep as JSON — CI
//! uploads it as the `BENCH_ingest_throughput.json` artifact, recording
//! the parallel-builder speedup and snapshot-cache payoff per run.

use gnnie_bench::experiments::ingest_throughput;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: ingest_throughput [--json <path>] (got {other:?})");
            std::process::exit(2);
        }
    };

    let ctx = gnnie_bench::Ctx::from_env();
    // One sweep feeds both the printed table and the JSON artifact.
    let sweep = ingest_throughput::sweep(&ctx);
    ingest_throughput::render(&sweep).print();

    if let Some(path) = json_path {
        let json = render_json(&sweep);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[ingest_throughput: wrote {path}]");
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline no-op shim):
/// every value is a number or a known identifier, so no escaping is
/// needed.
fn render_json(sweep: &ingest_throughput::IngestSweep) -> String {
    let mut out = String::from("{\n  \"sweep\": [\n");
    for (i, r) in sweep.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"format\": \"{}\", \"shards\": {}, \"parse_ms\": {:.4}, \
             \"build_ms\": {:.4}, \"serial_build_ms\": {:.4}, \"speedup_vs_serial\": {:.4}, \
             \"matches_serial\": {}, \"vertices\": {}, \"input_edges\": {}}}{}\n",
            r.format,
            r.shards,
            r.parse_ms,
            r.build_ms,
            r.serial_build_ms,
            r.speedup,
            r.matches_serial,
            r.vertices,
            r.input_edges,
            if i + 1 == sweep.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"cache\": [\n");
    for (i, c) in sweep.cache.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"read_ms\": {:.4}, \"text_path_ms\": {:.4}}}{}\n",
            c.kind,
            c.read_ms,
            c.text_path_ms,
            if i + 1 == sweep.cache.len() { "" } else { "," },
        ));
    }
    let oc = &sweep.outofcore;
    out.push_str(&format!(
        "  ],\n  \"outofcore\": {{\"vertices\": {}, \"input_edges\": {}, \"chunk_bytes\": {}, \
         \"chunked_build_ms\": {:.4}, \"inmem_build_ms\": {:.4}, \"bit_identical\": {}, \
         \"snapshot_load_ms\": {:.4}, \"reparse_ms\": {:.4}, \
         \"load_speedup_vs_reparse\": {:.4}, \"mmap\": {}}}\n}}\n",
        oc.vertices,
        oc.input_edges,
        oc.chunk_bytes,
        oc.chunked_build_ms,
        oc.inmem_build_ms,
        oc.bit_identical,
        oc.snapshot_load_ms,
        oc.reparse_ms,
        oc.load_speedup_vs_reparse,
        oc.mmap,
    ));
    out
}
