//! Regenerates the tiered feature-cache split sweep; see
//! `gnnie_bench::experiments::tiered_cache`.
//!
//! With `--json <path>`, additionally writes the sweep as JSON — CI
//! uploads it as the `BENCH_tiered_cache.json` artifact and the
//! `bench_check` gate compares its headline metrics (the workload
//! split's mean on-chip hit rate, how many datasets it wins on total
//! cycles, and the mean even/workload cycle ratio) against
//! `bench/baselines/tiered_cache.json`. Every gated number is simulated
//! cycles, deterministic run to run.

use gnnie_bench::experiments::tiered_cache;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: tiered_cache [--json <path>] (got {other:?})");
            std::process::exit(2);
        }
    };

    let ctx = gnnie_bench::Ctx::from_env();
    // One sweep feeds both the printed table and the JSON artifact.
    let rows = tiered_cache::sweep(&ctx);
    tiered_cache::render(&rows).print();

    if let Some(path) = json_path {
        let json = render_json(&rows);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[tiered_cache: wrote {path}]");
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline no-op shim):
/// every value is a number or a known identifier, so no escaping is
/// needed.
fn render_json(rows: &[tiered_cache::TieredRow]) -> String {
    let mut out = String::from("{\n  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"budget_bytes\": {}, \
             \"onchip_hit_rate\": {:.4}, \"dram_hit_rate\": {:.4}, \
             \"ssd_read_bytes\": {}, \"total_cycles\": {}}}{}\n",
            r.dataset.abbrev(),
            r.mode.name(),
            r.budget_bytes,
            r.onchip_hit_rate,
            r.dram_hit_rate,
            r.ssd_read_bytes,
            r.total_cycles,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
