//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig14_energy_breakdown`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig14_energy_breakdown::run(&ctx).print();
}
