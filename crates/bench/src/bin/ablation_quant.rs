//! Regenerates the ablation; see `gnnie_bench::experiments::ablation_quant`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::ablation_quant::run(&ctx).print();
}
