//! Regenerates the design-space exploration; see
//! `gnnie_bench::experiments::dse`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::dse::run(&ctx).print();
}
