//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig11_gamma_ablation`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig11_gamma_ablation::run(&ctx).print();
}
