//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig01_accuracy`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig01_accuracy::run(&ctx).print();
}
