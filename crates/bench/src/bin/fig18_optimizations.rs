//! Regenerates the paper artifact; see `gnnie_bench::experiments::fig18_optimizations`.

fn main() {
    let ctx = gnnie_bench::Ctx::from_env();
    gnnie_bench::experiments::fig18_optimizations::run(&ctx).print();
}
