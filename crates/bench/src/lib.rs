//! The GNNIE experiment harness.
//!
//! One module per table/figure of the paper's evaluation section
//! ([`experiments`]); each regenerates its artifact — workload, parameter
//! sweep, baselines — and prints the measured rows next to the paper's
//! reported values. The `run_all` binary executes everything;
//! `cargo bench` re-runs the suite through the `figures` bench target and
//! times the simulator's kernels through `kernels`.
//!
//! # Scaling
//!
//! `GNNIE_SCALE` (a float in `(0, 1]`) scales every dataset; per-dataset
//! defaults keep the harness laptop-friendly: full size for Cora,
//! Citeseer, and Pubmed, 10% for PPI, 2% for Reddit. The paper's trends
//! are scale-stable (verified in the integration tests).

pub mod ctx;
pub mod experiments;
pub mod gate;
pub mod json;
pub mod table;
pub mod trace;

pub use ctx::Ctx;
pub use table::Table;

/// An experiment's rendered result: an id like `"fig12a"`, a title, and
/// the printable lines (already column-aligned).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Paper artifact id (e.g. "Fig. 12a", "Table IV").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered lines.
    pub lines: Vec<String>,
}

impl ExperimentResult {
    /// Prints the result to stdout with a header.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        for line in &self.lines {
            println!("{line}");
        }
        println!();
    }
}

/// An experiment entry point: regenerates one artifact from the shared
/// context.
pub type ExperimentFn = fn(&Ctx) -> ExperimentResult;

/// Every experiment in paper order, as `(id, runner)` pairs.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig01", experiments::fig01_accuracy::run),
        ("table2", experiments::table2_datasets::run),
        ("table3", experiments::table3_configs::run),
        ("fig02", experiments::fig02_feature_sparsity::run),
        ("fig10", experiments::fig10_alpha_rounds::run),
        ("fig11", experiments::fig11_gamma_ablation::run),
        ("fig12", experiments::fig12_baseline_speedup::run),
        ("fig13", experiments::fig13_cross_platform::run),
        ("fig14", experiments::fig14_energy_breakdown::run),
        ("fig15", experiments::fig15_energy_efficiency::run),
        ("fig16", experiments::fig16_weighting_balance::run),
        ("fig17", experiments::fig17_beta_designs::run),
        ("fig18", experiments::fig18_optimizations::run),
        ("table4", experiments::table4_throughput::run),
        ("table4_scaling", experiments::table4_scaling::run),
        // Ablations beyond the paper's figures (design choices DESIGN.md
        // calls out: attention reordering, exp-LUT sizing, 8-bit weights).
        ("ablation_attention", experiments::ablation_attention::run),
        ("ablation_buffers", experiments::ablation_buffers::run),
        ("ablation_cache_policy", experiments::ablation_cache_policy::run),
        ("ablation_comm", experiments::ablation_comm::run),
        ("ablation_lut", experiments::ablation_lut::run),
        ("ablation_multihead", experiments::ablation_multihead::run),
        ("ablation_psum", experiments::ablation_psum::run),
        ("ablation_psum_policy", experiments::ablation_psum_policy::run),
        ("ablation_quant", experiments::ablation_quant::run),
        ("dse", experiments::dse::run),
        ("ingest_throughput", experiments::ingest_throughput::run),
        ("online_serving", experiments::online_serving::run),
        ("parallel_speedup", experiments::parallel_speedup::run),
        ("scaleout", experiments::scaleout::run),
        ("serving_throughput", experiments::serving_throughput::run),
        ("tiered_cache", experiments::tiered_cache::run),
    ]
}
