//! A minimal JSON reader for the perf-regression gate.
//!
//! The workspace's serde is an offline no-op shim, so the `BENCH_*.json`
//! artifacts are written as hand-rolled strings — and read back here by a
//! small recursive-descent parser. It covers the full JSON grammar the
//! artifacts and baselines use (objects, arrays, strings with standard
//! escapes, numbers, booleans, null) and reports errors with a byte
//! offset. Numbers are held as `f64`, which is exact for every integer
//! the artifacts emit.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like most readers).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` otherwise / when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shapes() {
        let doc = r#"{
          "sweep": [
            {"format": "whitespace", "shards": 1, "parse_ms": 1.25, "matches_serial": true},
            {"format": "csv", "shards": 8, "parse_ms": 0.5, "matches_serial": false}
          ],
          "empty": [],
          "nested": {"x": null}
        }"#;
        let v = Json::parse(doc).unwrap();
        let sweep = v.get("sweep").unwrap().as_arr().unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].get("shards").unwrap().as_f64(), Some(1.0));
        assert_eq!(sweep[0].get("format").unwrap().as_str(), Some("whitespace"));
        assert_eq!(sweep[1].get("matches_serial").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("empty").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(v.get("nested").unwrap().get("x"), Some(&Json::Null));
    }

    #[test]
    fn parses_numbers_strings_and_escapes() {
        assert_eq!(Json::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(Json::parse("[1,2,3]").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(Json::parse(r#""a\"b\nA""#).unwrap().as_str(), Some("a\"b\nA"));
        assert_eq!(Json::parse(r#""héllo""#).unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }
}
