//! Well-formedness validator for the Chrome trace-event JSON that
//! `gnnie run --trace` emits (`gnnie_obs::chrome_trace_json`).
//!
//! CI generates a trace on a small dataset and runs this validator over
//! it (the `trace_check` bin) before uploading the file as an artifact,
//! so a malformed export fails the job instead of shipping a file
//! Perfetto cannot load. The checks are structural — built on the
//! hand-rolled [`crate::json`] parser, no external deps:
//!
//! * the document is valid JSON with a `traceEvents` array;
//! * every event carries a `ph` phase, integer `pid`/`tid`, and a
//!   string `name`;
//! * `ph:"X"` spans carry non-negative `ts` and `dur`, `ph:"i"`
//!   instants carry `ts` and a scope `s`, `ph:"C"` counters carry `ts`
//!   and a numeric `args.value`;
//! * every `(pid, tid)` a real event lands on is labeled up front by
//!   `process_name` / `thread_name` metadata, the way the exporter
//!   promises.

use crate::json::Json;

/// What a validated trace contains, for the one-line report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `ph:"X"` complete spans.
    pub spans: usize,
    /// `ph:"i"` instant markers.
    pub instants: usize,
    /// `ph:"C"` counter samples.
    pub counters: usize,
    /// Labeled processes (`process_name` metadata entries).
    pub processes: usize,
    /// Labeled tracks (`thread_name` metadata entries).
    pub tracks: usize,
    /// Total simulated cycles covered by spans.
    pub span_cycles: u64,
}

impl TraceSummary {
    /// The one-line report `trace_check` prints per valid file.
    pub fn render(&self) -> String {
        format!(
            "{} spans / {} instants / {} counters on {} tracks in {} processes, \
             {} span cycles",
            self.spans,
            self.instants,
            self.counters,
            self.tracks,
            self.processes,
            self.span_cycles
        )
    }
}

/// A non-negative integer field (ids and cycle timestamps are exact).
fn int_field(event: &Json, key: &str, at: usize) -> Result<u64, String> {
    let v = event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event {at}: missing numeric `{key}`"))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("event {at}: `{key}` must be a non-negative integer, got {v}"));
    }
    Ok(v as u64)
}

fn str_field<'a>(event: &'a Json, key: &str, at: usize) -> Result<&'a str, String> {
    match event.get(key) {
        Some(Json::Str(s)) => Ok(s),
        _ => Err(format!("event {at}: missing string `{key}`")),
    }
}

/// Validates one exported trace document.
///
/// # Errors
///
/// The first structural violation, naming the offending event's index in
/// `traceEvents`.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("document has no `traceEvents` array")?;

    let mut summary = TraceSummary::default();
    let mut labeled_pids: Vec<u64> = Vec::new();
    let mut labeled_tracks: Vec<(u64, u64)> = Vec::new();
    for (at, event) in events.iter().enumerate() {
        let ph = str_field(event, "ph", at)?;
        let pid = int_field(event, "pid", at)?;
        let tid = int_field(event, "tid", at)?;
        let name = str_field(event, "name", at)?;
        if ph != "M" {
            // The exporter writes all metadata first, so by the time a
            // real event lands on a track, that track must be labeled.
            if !labeled_pids.contains(&pid) {
                return Err(format!("event {at}: pid {pid} has no process_name metadata"));
            }
            if !labeled_tracks.contains(&(pid, tid)) {
                return Err(format!(
                    "event {at}: track {pid}:{tid} has no thread_name metadata"
                ));
            }
        }
        match ph {
            "M" => {
                match event.get("args").and_then(|a| a.get("name")) {
                    Some(Json::Str(_)) => {}
                    _ => {
                        return Err(format!("event {at}: metadata without string `args.name`"))
                    }
                }
                match name {
                    "process_name" => {
                        if labeled_pids.contains(&pid) {
                            return Err(format!("event {at}: pid {pid} labeled twice"));
                        }
                        labeled_pids.push(pid);
                        summary.processes += 1;
                    }
                    "thread_name" => {
                        // tid 0 doubles as the process_name carrier, so a
                        // (pid, 0) pair may legally appear in both kinds.
                        if labeled_tracks.contains(&(pid, tid)) {
                            return Err(format!("event {at}: track {pid}:{tid} labeled twice"));
                        }
                        labeled_tracks.push((pid, tid));
                        summary.tracks += 1;
                    }
                    other => {
                        return Err(format!("event {at}: unknown metadata `{other}`"));
                    }
                }
            }
            "X" => {
                int_field(event, "ts", at)?;
                summary.span_cycles += int_field(event, "dur", at)?;
                summary.spans += 1;
            }
            "i" => {
                int_field(event, "ts", at)?;
                str_field(event, "s", at)?;
                summary.instants += 1;
            }
            "C" => {
                int_field(event, "ts", at)?;
                match event.get("args").and_then(|a| a.get("value")).and_then(Json::as_f64) {
                    Some(_) => {}
                    None => {
                        return Err(format!("event {at}: counter without numeric `args.value`"))
                    }
                }
                summary.counters += 1;
            }
            other => return Err(format!("event {at}: unknown phase `{other}`")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnie_obs::{chrome_trace_json, Trace};

    fn sample_json() -> String {
        let t = Trace::recording();
        t.span("engine", "phases", "weighting L0", 0, 10, &[("macs", 4u64.into())]);
        t.span("chips", "chip0", "walk L0", 0, 6, &[]);
        t.instant("serve", "interactive", "enqueue req0", 2, &[]);
        t.counter("tiers", "onchip", "evictions", 8, 3);
        chrome_trace_json(&t.events())
    }

    #[test]
    fn accepts_the_exporters_output_and_counts_it() {
        let summary = validate_chrome_trace(&sample_json()).unwrap();
        assert_eq!(
            summary,
            TraceSummary {
                spans: 2,
                instants: 1,
                counters: 1,
                processes: 4,
                tracks: 4,
                span_cycles: 16,
            }
        );
        let line = summary.render();
        assert!(line.contains("2 spans") && line.contains("16 span cycles"), "{line}");
        // The empty export is still a valid (if dull) document.
        let empty = validate_chrome_trace(&chrome_trace_json(&[])).unwrap();
        assert_eq!(empty, TraceSummary::default());
    }

    #[test]
    fn rejects_malformed_documents_by_event_index() {
        for (doc, needle) in [
            ("nonsense", "not valid JSON"),
            ("{}", "traceEvents"),
            (r#"{"traceEvents": [{"pid": 0, "tid": 0, "name": "x"}]}"#, "`ph`"),
            (r#"{"traceEvents": [{"ph": "X", "tid": 0, "name": "x"}]}"#, "`pid`"),
            (
                r#"{"traceEvents": [{"ph": "M", "pid": 0.5, "tid": 0, "name": "process_name",
                     "args": {"name": "p"}}]}"#,
                "non-negative integer",
            ),
            (
                r#"{"traceEvents": [{"ph": "Q", "pid": 0, "tid": 0, "name": "x"}]}"#,
                "no process_name",
            ),
            (
                r#"{"traceEvents": [
                     {"ph": "M", "pid": 0, "tid": 0, "name": "process_name", "args": {"name": "p"}},
                     {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name", "args": {"name": "t"}},
                     {"ph": "X", "pid": 0, "tid": 0, "name": "s", "ts": 0}]}"#,
                "`dur`",
            ),
            (
                r#"{"traceEvents": [
                     {"ph": "M", "pid": 0, "tid": 0, "name": "process_name", "args": {"name": "p"}},
                     {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name", "args": {"name": "t"}},
                     {"ph": "C", "pid": 0, "tid": 0, "name": "c", "ts": 0, "args": {}}]}"#,
                "args.value",
            ),
            (
                r#"{"traceEvents": [
                     {"ph": "M", "pid": 0, "tid": 0, "name": "process_name", "args": {"name": "p"}},
                     {"ph": "X", "pid": 0, "tid": 7, "name": "s", "ts": 0, "dur": 1}]}"#,
                "thread_name",
            ),
        ] {
            let err = validate_chrome_trace(doc).unwrap_err();
            assert!(err.contains(needle), "`{needle}` not named for {doc}: {err}");
        }
    }
}
