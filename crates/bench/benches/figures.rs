//! `cargo bench` entry point that regenerates every paper table and
//! figure (harness = false: this is the experiment suite, not a timing
//! benchmark — use the `kernels` bench for Criterion timings).
//!
//! Honors `GNNIE_SCALE`; at the default scales the full suite takes a few
//! minutes.

fn main() {
    // Under `cargo bench -- --test` style filters, still run everything:
    // each experiment is cheap relative to dataset generation, which is
    // cached within the process.
    let ctx = gnnie_bench::Ctx::from_env();
    let t0 = std::time::Instant::now();
    for (id, runner) in gnnie_bench::all_experiments() {
        let t = std::time::Instant::now();
        let result = runner(&ctx);
        result.print();
        eprintln!("[{id} regenerated in {:.2} s]", t.elapsed().as_secs_f64());
    }
    eprintln!("[figures suite completed in {:.1} s]", t0.elapsed().as_secs_f64());
}
