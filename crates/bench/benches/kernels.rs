//! Criterion microbenchmarks of the simulator's hot kernels: the FM
//! scheduler, the degree-aware cache walk, the RLC codec, the full
//! Weighting model, and the linear vs. naïve GAT attention orderings
//! (the §V-A ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::cpe::CpeArray;
use gnnie_core::gat::AttentionCost;
use gnnie_core::weighting::{
    schedule, simulate_weighting, BlockProfile, WeightingMode, WeightingParams,
};
use gnnie_graph::reorder::Permutation;
use gnnie_graph::{Dataset, SyntheticDataset};
use gnnie_mem::{CacheConfig, DegreeAwareCache, HbmModel};
use gnnie_tensor::rlc;
use gnnie_tensor::SparseVec;

fn bench_fm_scheduler(c: &mut Criterion) {
    let ds = SyntheticDataset::generate(Dataset::Cora, 0.5, 7);
    let cfg = AcceleratorConfig::paper(Dataset::Cora);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    let mut g = c.benchmark_group("weighting_schedule");
    for mode in [WeightingMode::Baseline, WeightingMode::Fm, WeightingMode::FmLr] {
        g.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| schedule(black_box(&profile), &arr, mode));
        });
    }
    g.finish();
}

fn bench_cache_walk(c: &mut Criterion) {
    let ds = SyntheticDataset::generate(Dataset::Cora, 0.5, 7);
    let graph = Permutation::descending_degree(&ds.graph).apply(&ds.graph);
    let mut g = c.benchmark_group("cache_walk");
    for capacity in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, &capacity| {
            b.iter(|| {
                let mut dram = HbmModel::hbm2_256gbps(1.3e9);
                let cfg = CacheConfig::with_capacity(capacity, 512);
                DegreeAwareCache::new(black_box(&graph), cfg).run(&mut dram)
            });
        });
    }
    g.finish();
}

fn bench_rlc_codec(c: &mut Criterion) {
    let ds = SyntheticDataset::generate(Dataset::Cora, 0.5, 7);
    let rows: Vec<SparseVec> = (0..64).map(|i| ds.features.row(i)).collect();
    c.bench_function("rlc_encode_decode_64_rows", |b| {
        b.iter(|| {
            for row in &rows {
                let enc = rlc::encode(black_box(row));
                let dec = rlc::decode(&enc).expect("round trip");
                black_box(dec);
            }
        });
    });
}

fn bench_weighting_model(c: &mut Criterion) {
    let ds = SyntheticDataset::generate(Dataset::Citeseer, 0.5, 7);
    let cfg = AcceleratorConfig::paper(Dataset::Citeseer);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    c.bench_function("simulate_weighting_citeseer", |b| {
        b.iter(|| {
            let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
            simulate_weighting(
                black_box(&cfg),
                &arr,
                &profile,
                WeightingParams::default(),
                &mut dram,
            )
        });
    });
}

fn bench_attention_orderings(c: &mut Criterion) {
    // The §V-A complexity claim as a micro-kernel: evaluate both cost
    // models across graph sizes.
    let mut g = c.benchmark_group("gat_attention_ordering");
    for (v, e) in [(10_000u64, 100_000u64), (100_000, 1_000_000)] {
        g.bench_with_input(BenchmarkId::new("linear", v), &(v, e), |b, &(v, e)| {
            b.iter(|| AttentionCost::linear(black_box(v), e, 128).compute_cycles(1216));
        });
        g.bench_with_input(BenchmarkId::new("naive", v), &(v, e), |b, &(v, e)| {
            b.iter(|| AttentionCost::naive(black_box(v), e, 128).compute_cycles(1216));
        });
    }
    g.finish();
}

fn bench_noc_rebalance(c: &mut Criterion) {
    // The §VII communication models: GNNIE's one-shot LR pricing vs the
    // iterative AWB-style rebalance on a worst-case skewed load.
    use gnnie_core::noc::{awb_rebalance_traffic, lr_traffic, AwbRebalanceParams};
    let ds = SyntheticDataset::generate(Dataset::Pubmed, 0.5, 7);
    let cfg = AcceleratorConfig::paper(Dataset::Pubmed);
    let arr = CpeArray::new(&cfg);
    let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
    let lr_sched = schedule(&profile, &arr, WeightingMode::FmLr);
    let loads = schedule(&profile, &arr, WeightingMode::Baseline).per_row_cycles(&arr);
    let mut g = c.benchmark_group("noc_rebalance");
    g.bench_function("gnnie_lr_pricing", |b| {
        b.iter(|| lr_traffic(black_box(&lr_sched), profile.k()));
    });
    g.bench_function("awb_iterative_rebalance", |b| {
        b.iter(|| awb_rebalance_traffic(black_box(&loads), AwbRebalanceParams::default()));
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    // Small sample counts: these kernels are deterministic simulators, so
    // variance is low and the default 100 samples would take minutes.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fm_scheduler,
    bench_cache_walk,
    bench_rlc_codec,
    bench_weighting_model,
    bench_attention_orderings,
    bench_noc_rebalance
}
criterion_main!(kernels);
