//! Property suite for the parallel-simulation contract: `Engine::run`
//! reports must be **byte-identical** across `sim_threads ∈ {1, 2, 4, 8}`
//! for arbitrary dataset/model/cache-policy combinations.
//!
//! The sharded loops (the per-vertex Weighting profile, the FM counting
//! sort, the cache walk's vertex scans) all partition vertices into
//! contiguous ranges and merge per-shard results in shard order, so the
//! thread count must be unobservable in every reported quantity — cycle
//! counts, DRAM byte counters, energy, per-round α histograms, the lot.
//! Byte-identity is asserted on the report's full `Debug` rendering.

use proptest::prelude::*;

use gnnie_core::config::AcceleratorConfig;
use gnnie_core::engine::{Engine, RunOptions};
use gnnie_core::SimThreads;
use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_graph::{Dataset, GraphDataset};
use gnnie_mem::CachePolicyKind;

/// Small scales keep each case fast (CI runs every property at
/// `PROPTEST_CASES=32`); the shim's `proptest!` takes plain-identifier
/// arguments, so combinations are drawn as indices into const tables.
const DATASETS: [(Dataset, f64); 3] =
    [(Dataset::Cora, 0.06), (Dataset::Citeseer, 0.06), (Dataset::Pubmed, 0.015)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_reports_are_byte_identical_across_sim_threads(
        dataset_index in 0usize..3,
        model_index in 0usize..5,
        policy_index in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let (dataset, scale) = DATASETS[dataset_index];
        let model = GnnModel::ALL[model_index];
        let policy = CachePolicyKind::ALL[policy_index];
        let ds = GraphDataset::generate(dataset, scale, seed);
        let mc = ModelConfig::paper(model, &ds.spec);
        let mut cfg = AcceleratorConfig::paper(dataset);
        cfg.cache_policy = policy;
        cfg.sim_threads = SimThreads::Fixed(1);
        let serial = format!("{:?}", Engine::new(cfg.clone()).run(&mc, &ds));
        for threads in [2usize, 4, 8] {
            cfg.sim_threads = SimThreads::Fixed(threads);
            let sharded = format!("{:?}", Engine::new(cfg.clone()).run(&mc, &ds));
            prop_assert_eq!(
                &sharded,
                &serial,
                "{} / {:?} / {} diverged at {} threads (seed {})",
                model,
                dataset,
                policy,
                threads,
                seed
            );
        }
    }

    #[test]
    fn run_options_override_is_equally_deterministic(
        dataset_index in 0usize..3,
        seed in 0u64..1_000,
    ) {
        // The per-run override must land on the same bytes as the config
        // knob, including with resident weights (the serving path).
        let (dataset, scale) = DATASETS[dataset_index];
        let ds = GraphDataset::generate(dataset, scale, seed);
        let mc = ModelConfig::paper(GnnModel::Gcn, &ds.spec);
        let mut cfg = AcceleratorConfig::paper(dataset);
        cfg.sim_threads = SimThreads::Fixed(1);
        let engine = Engine::new(cfg);
        let mut renderings = Vec::new();
        for threads in [1usize, 4] {
            let mut session = engine.begin_with(
                &mc,
                &ds,
                RunOptions {
                    weights_resident: true,
                    sim_threads: Some(SimThreads::Fixed(threads)),
                    ..RunOptions::default()
                },
            );
            session.run_to_completion();
            renderings.push(format!("{:?}", session.finish()));
        }
        prop_assert_eq!(&renderings[0], &renderings[1]);
    }
}
