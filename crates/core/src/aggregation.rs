//! The Aggregation-phase cycle model (paper §V–VI).
//!
//! Aggregation walks the dynamic subgraph held in the input buffer by the
//! degree-aware cache (`gnnie-mem`). Per cache iteration the edges with
//! both endpoints resident are executed as pairwise vector operations on
//! the CPEs:
//!
//! * with **LB** (degree-dependent load distribution, §V-C) the directed
//!   edge updates spread evenly over the whole array — the iteration costs
//!   the ideal `⌈ops / total MACs⌉`;
//! * without LB each vertex's adder chain serializes on one CPE, so the
//!   highest-degree vertex in the iteration gates it (the power-law tail
//!   the paper calls out);
//! * for **GATs** each edge additionally runs
//!   `add → LeakyReLU → exp(LUT) → multiply` through the SFUs (Fig. 7),
//!   preceded by the two linear-complexity attention dot passes (§V-A/B)
//!   and followed by the softmax division.
//!
//! DRAM fetches overlap compute through double buffering; the phase total
//! uses `gnnie-mem`'s [`DoubleBuffer`] accounting.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use gnnie_graph::{CsrGraph, GraphPartition, Permutation};
use gnnie_mem::cache::IterationStats;
use gnnie_mem::{
    CacheConfig, CacheSim, CacheSimResult, DoubleBuffer, HbmModel, MemoryHierarchy, SimThreads,
};

use crate::config::AcceleratorConfig;
use crate::cpe::{div_ceil, CpeArray};
use crate::gat::AttentionCost;

/// Cap on the coordinate-array entries pinned per cached vertex; hub
/// lists beyond this stream through in chunks (see capacity sizing in
/// [`simulate_aggregation`]).
pub const MAX_CACHED_NEIGHBORS_PER_VERTEX: u64 = 64;

/// Parameters of one Aggregation invocation.
#[derive(Debug, Clone, Copy)]
pub struct AggregationParams {
    /// Feature width being aggregated (`F_out` of the layer).
    pub f_out: usize,
    /// GAT mode: per-edge attention ops and the softmax pipeline.
    pub is_gat: bool,
}

/// Outcome of the Aggregation cycle model for one layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregationReport {
    /// Whether the degree-aware cache policy (CP) drove the walk.
    pub cache_policy_used: bool,
    /// Whether LB spread edge updates across the array.
    pub load_balanced: bool,
    /// Full cache simulation result (None for the id-order baseline).
    pub cache: Option<CacheSimResult>,
    /// CPE compute cycles across all iterations.
    pub compute_cycles: u64,
    /// SFU-bound cycles (GAT only; included in `compute_cycles`).
    pub sfu_cycles: u64,
    /// GAT-only: attention partial dot passes plus softmax division.
    pub attention_cycles: u64,
    /// DRAM cycles for vertex/psum traffic.
    pub dram_cycles: u64,
    /// Stall cycles where compute waited on DRAM despite double buffering.
    pub stall_cycles: u64,
    /// Phase total (compute/fetch overlapped, plus attention passes).
    pub total_cycles: u64,
    /// Directed edge updates executed (2 per undirected edge).
    pub edge_updates: u64,
    /// MAC operations issued.
    pub macs_issued: u64,
    /// Exponential evaluations (GAT softmax numerators).
    pub exp_evals: u64,
    /// Vertices the walk covered.
    pub vertices: u64,
    /// Boundary feature bytes moved over the inter-chip link (0 on a
    /// single chip).
    pub inter_chip_bytes: u64,
    /// Cycles spent on inter-chip transfers (0 on a single chip).
    pub inter_chip_cycles: u64,
    /// Per-chip timeline of the scale-out walk, in partition order
    /// (empty on single-chip runs). Filled by the serial merge loop, so
    /// it inherits the replay-stable contract of the merged report —
    /// the tracer reconstructs per-chip span tracks from these lanes
    /// without touching the sharded walk itself.
    pub chip_lanes: Vec<ChipLane>,
}

/// One chip's share of a scale-out Aggregation phase: its own partition
/// walk, its side of the cut-edge updates, and its halo transfer over
/// the inter-chip link.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipLane {
    /// Partition index (chip id).
    pub chip: usize,
    /// Cycles of the chip's private cache walk.
    pub walk_cycles: u64,
    /// Cycles spent on the chip's side of cut-edge updates.
    pub cut_cycles: u64,
    /// Cycles the chip's halo transfer occupied the link.
    pub link_cycles: u64,
    /// Boundary feature bytes this chip pulled over the link.
    pub link_bytes: u64,
    /// Distinct external neighbors whose features crossed the link.
    pub halo_vertices: u64,
    /// Cut edges incident to this chip.
    pub cut_edges: u64,
}

impl AggregationReport {
    /// An all-zero report for layers whose aggregation is a dense matmul
    /// folded elsewhere (DiffPool's coarsened levels).
    pub fn empty() -> Self {
        AggregationReport {
            cache_policy_used: false,
            load_balanced: false,
            cache: None,
            compute_cycles: 0,
            sfu_cycles: 0,
            attention_cycles: 0,
            dram_cycles: 0,
            stall_cycles: 0,
            total_cycles: 0,
            edge_updates: 0,
            macs_issued: 0,
            exp_evals: 0,
            vertices: 0,
            inter_chip_bytes: 0,
            inter_chip_cycles: 0,
            chip_lanes: Vec::new(),
        }
    }

    /// Folds another head's pass over the same graph into this report
    /// (multi-head GAT: each head re-runs the weighted aggregation with
    /// its own coefficients). Extensive quantities add; the vertex set
    /// and policy flags are shared, and the first head's cache trace is
    /// kept (every head walks the identical subgraph sequence).
    pub fn absorb(&mut self, other: &AggregationReport) {
        self.compute_cycles += other.compute_cycles;
        self.sfu_cycles += other.sfu_cycles;
        self.attention_cycles += other.attention_cycles;
        self.dram_cycles += other.dram_cycles;
        self.stall_cycles += other.stall_cycles;
        self.total_cycles += other.total_cycles;
        self.edge_updates += other.edge_updates;
        self.macs_issued += other.macs_issued;
        self.exp_evals += other.exp_evals;
        self.inter_chip_bytes += other.inter_chip_bytes;
        self.inter_chip_cycles += other.inter_chip_cycles;
        // Lanes line up positionally (every head walks the same
        // partition); cycle and traffic shares add per chip.
        if self.chip_lanes.is_empty() {
            self.chip_lanes = other.chip_lanes.clone();
        } else {
            for (lane, o) in self.chip_lanes.iter_mut().zip(&other.chip_lanes) {
                lane.walk_cycles += o.walk_cycles;
                lane.cut_cycles += o.cut_cycles;
                lane.link_cycles += o.link_cycles;
                lane.link_bytes += o.link_bytes;
                lane.halo_vertices += o.halo_vertices;
                lane.cut_edges += o.cut_edges;
            }
        }
    }
}

/// Runs the Aggregation cycle model over `graph`.
///
/// `graph` must already be relabeled into descending-degree order when the
/// cache policy is enabled (the engine does this as preprocessing, §VI).
pub fn simulate_aggregation(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    graph: &CsrGraph,
    params: AggregationParams,
    dram: &mut HbmModel,
) -> AggregationReport {
    simulate_aggregation_with(cfg, arr, graph, params, dram, cfg.sim_threads)
}

/// [`simulate_aggregation`] with an explicit worker-thread policy for the
/// cache walk's sharded vertex scans (the engine passes its per-run
/// effective setting; results are bit-identical at any value).
///
/// With `cfg.chips > 1` the graph is partitioned per
/// [`AcceleratorConfig::partitioner`], every chip walks its own partition
/// with a private cache and DRAM channel, boundary features are charged to
/// the inter-chip link, and the phase total is the slowest chip's
/// makespan. `chips == 1` takes the exact single-chip code path, so those
/// reports are bit-identical to builds without scale-out.
pub fn simulate_aggregation_with(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    graph: &CsrGraph,
    params: AggregationParams,
    dram: &mut HbmModel,
    sim_threads: SimThreads,
) -> AggregationReport {
    if cfg.chips > 1 {
        simulate_scaleout(cfg, arr, graph, params, dram, sim_threads)
    } else {
        simulate_single_chip(cfg, arr, graph, params, dram, sim_threads)
    }
}

/// The single-chip cycle model (the only path when `chips <= 1`).
fn simulate_single_chip(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    graph: &CsrGraph,
    params: AggregationParams,
    dram: &mut HbmModel,
    sim_threads: SimThreads,
) -> AggregationReport {
    let f = params.f_out.max(1);
    // Per-vertex payload: the weighted feature vector, for GATs the
    // appended {e_i1, e_i2} pair (§VI), the α word, and the connectivity
    // share. The coordinate-array slice held per cached vertex is capped:
    // hub adjacency lists stream through the buffer in chunks rather than
    // pinning kilobytes per vertex (otherwise a dense graph collapses the
    // window to a handful of vertices and the policy cannot form
    // subgraphs at all).
    let payload = (f * 4) as u64 + if params.is_gat { 8 } else { 0 };
    let mean_deg = if graph.num_vertices() == 0 {
        0
    } else {
        (2 * graph.num_edges() / graph.num_vertices()) as u64
    };
    let connectivity_bytes = 4 * mean_deg.min(MAX_CACHED_NEIGHBORS_PER_VERTEX);
    let capacity = (cfg.input_buffer_bytes as u64 / (payload + connectivity_bytes + 4).max(1))
        .max(4) as usize;

    let (iteration_stats, cache, cache_dram_cycles) = if cfg.enable_cache_policy {
        let mut cache_cfg = CacheConfig::with_capacity(capacity, payload);
        cache_cfg.gamma = cfg.gamma;
        cache_cfg.sim_threads = sim_threads;
        // The replacement decision is pluggable (`AcceleratorConfig::
        // cache_policy`); the walk and its traffic accounting are shared.
        let mut policy = cfg.cache_policy.instantiate();
        let result = match &cfg.tiers {
            // Tiered feature store: the walk streams against the
            // on-chip → DRAM → SSD hierarchy, and the hierarchy's DRAM
            // tier folds back into the session channel so the report's
            // energy/traffic totals stay coherent.
            Some(spec) => {
                let line = payload + connectivity_bytes + 4;
                let tier_cfgs = spec.resolve(graph, line);
                // The on-chip tier is carved out of the same SRAM the
                // walk's input buffer lives in, so pinning features
                // on-chip shrinks the dynamic subgraph window — the
                // real cost a naive even split pays for over-allocating
                // the fast tier, and what the workload-aware split's
                // hot-prefix sizing avoids.
                let onchip_bytes = tier_cfgs
                    .iter()
                    .take(tier_cfgs.len().saturating_sub(1))
                    .find(|t| t.name == "onchip")
                    .map_or(0, |t| t.capacity_bytes);
                let avail = (cfg.input_buffer_bytes as u64).saturating_sub(onchip_bytes);
                let mut tiered_cfg =
                    CacheConfig::with_capacity((avail / line.max(1)).max(4) as usize, payload);
                tiered_cfg.gamma = cfg.gamma;
                tiered_cfg.sim_threads = sim_threads;
                let mut hier = MemoryHierarchy::new(
                    &tier_cfgs,
                    cfg.clock_hz,
                    graph.num_vertices() as u32,
                    line,
                );
                let r = CacheSim::new(graph, tiered_cfg).run_tiered(policy.as_mut(), &mut hier);
                dram.absorb_counters(&hier.dram_counters());
                r
            }
            None => CacheSim::new(graph, cache_cfg).run(policy.as_mut(), dram),
        };
        let cycles = result.dram_cycles;
        (result.iteration_stats.clone(), Some(result), cycles)
    } else {
        let (stats, cycles, _) =
            gnnie_mem::cache::simulate_id_order_baseline(graph, capacity, payload, dram);
        (stats, None, cycles)
    };

    let total_arrivals: u64 =
        iteration_stats.iter().map(|s| s.arrivals as u64).sum::<u64>().max(1);
    let total_macs = arr.total_macs() as u64;
    let min_macs = (0..arr.rows()).map(|r| arr.macs_in_row(r)).min().unwrap_or(1) as u64;

    let mut compute_cycles = 0u64;
    let mut sfu_cycles_total = 0u64;
    let mut edge_updates = 0u64;
    let mut overlap = DoubleBuffer::new();
    for s in &iteration_stats {
        let (iter_compute, iter_sfu) =
            iteration_cycles(s, f as u64, params.is_gat, cfg, total_macs, min_macs);
        compute_cycles += iter_compute;
        sfu_cycles_total += iter_sfu;
        edge_updates += updates_of(s);
        // This iteration's share of the DRAM stream, fetched while the
        // previous iteration computes.
        let fetch = cache_dram_cycles * s.arrivals as u64 / total_arrivals;
        overlap.push_batch(iter_compute, fetch);
    }

    // GAT pre/post passes: the e₁/e₂ dot products and the softmax divide.
    let attention_cycles = if params.is_gat {
        let v = graph.num_vertices() as u64;
        let e = graph.num_edges() as u64;
        let dots = AttentionCost::linear(v, e, f as u64).dot_macs;
        div_ceil(dots, total_macs) + div_ceil(v * f as u64, cfg.sfu_units as u64)
    } else {
        0
    };

    let exp_evals = if params.is_gat { edge_updates + graph.num_vertices() as u64 } else { 0 };
    let macs_issued = edge_updates * f as u64
        + if params.is_gat { 2 * graph.num_vertices() as u64 * f as u64 } else { 0 };

    let total_cycles = overlap.total_cycles() + attention_cycles;
    AggregationReport {
        cache_policy_used: cfg.enable_cache_policy,
        load_balanced: cfg.enable_agg_lb,
        cache,
        compute_cycles,
        sfu_cycles: sfu_cycles_total,
        attention_cycles,
        dram_cycles: cache_dram_cycles,
        stall_cycles: overlap.stall_cycles(),
        total_cycles,
        edge_updates,
        macs_issued,
        exp_evals,
        vertices: graph.num_vertices() as u64,
        inter_chip_bytes: 0,
        inter_chip_cycles: 0,
        chip_lanes: Vec::new(),
    }
}

/// Multi-chip Aggregation: one single-chip walk per graph partition, with
/// boundary-vertex feature traffic charged to the inter-chip link.
///
/// Deterministic merge contract: partitions are processed in partition
/// order on independent DRAM channel models, so the merged report is a
/// pure function of the graph and config — replay-stable at any
/// `sim_threads` width. Extensive quantities (updates, MACs, per-chip
/// compute/DRAM cycles, link traffic) sum; `total_cycles` is the slowest
/// chip's makespan (its walk, its share of cut-edge updates, and its link
/// transfers), which is where the scale-out speedup comes from. Cut edges
/// execute one directed update on each incident chip against the remote
/// feature received over the link, so `edge_updates` still covers every
/// directed edge exactly once. Chip 0's iteration trace and α histograms
/// stand for the merged cache result; its byte counters are the sum over
/// all chips.
fn simulate_scaleout(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    graph: &CsrGraph,
    params: AggregationParams,
    dram: &mut HbmModel,
    sim_threads: SimThreads,
) -> AggregationReport {
    let partition = GraphPartition::build(graph, cfg.chips, cfg.partitioner);
    let f = params.f_out.max(1) as u64;
    let payload = 4 * f + if params.is_gat { 8 } else { 0 };
    let total_macs = (arr.total_macs() as u64).max(1);

    let mut merged = AggregationReport::empty();
    merged.cache_policy_used = cfg.enable_cache_policy;
    merged.load_balanced = cfg.enable_agg_lb;
    merged.vertices = graph.num_vertices() as u64;
    let mut merged_cache: Option<CacheSimResult> = None;
    let mut makespan = 0u64;
    for (chip, part) in partition.parts().iter().enumerate() {
        if part.vertices.is_empty() {
            continue;
        }
        // Each chip degree-sorts its own partition, mirroring the
        // single-chip preprocessing contract the cache policy expects.
        let chip_graph = if cfg.enable_cache_policy {
            Permutation::descending_degree(&part.graph).apply(&part.graph)
        } else {
            part.graph.clone()
        };
        let mut chip_dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        // A tiered run divides the global capacity budget across chips:
        // evenly for explicit/even specs, by edge share for the
        // workload-aware split (busy partitions get more cache).
        let chip_cfg = match &cfg.tiers {
            Some(spec) => {
                let mut c = cfg.clone();
                c.tiers = Some(spec.for_chip(
                    cfg.chips as u64,
                    chip_graph.num_edges() as u64,
                    graph.num_edges() as u64,
                ));
                Cow::Owned(c)
            }
            None => Cow::Borrowed(cfg),
        };
        let r = simulate_single_chip(
            &chip_cfg,
            arr,
            &chip_graph,
            params,
            &mut chip_dram,
            sim_threads,
        );
        dram.absorb_counters(chip_dram.counters());

        // Every distinct external neighbor's feature crosses the link once.
        let link_bytes = part.halo_vertices * payload;
        let link_cycles = if link_bytes == 0 {
            0
        } else {
            cfg.link_latency_cycles + div_ceil(link_bytes, cfg.link_bytes_per_cycle.max(1))
        };
        // This chip's side of each incident cut edge: one directed update
        // against the received remote feature.
        let cut_updates = part.cut_edges;
        let cut_mac_ops = cut_updates * f + if params.is_gat { 2 * cut_updates } else { 0 };
        let cut_compute = div_ceil(cut_mac_ops, total_macs);
        let cut_sfu =
            if params.is_gat { div_ceil(2 * cut_updates, cfg.sfu_units as u64) } else { 0 };

        merged.compute_cycles += r.compute_cycles + cut_compute.max(cut_sfu);
        merged.sfu_cycles += r.sfu_cycles + cut_sfu;
        merged.attention_cycles += r.attention_cycles;
        merged.dram_cycles += r.dram_cycles;
        merged.stall_cycles += r.stall_cycles;
        merged.edge_updates += r.edge_updates + cut_updates;
        merged.macs_issued += r.macs_issued + cut_updates * f;
        merged.exp_evals += r.exp_evals + if params.is_gat { cut_updates } else { 0 };
        merged.inter_chip_bytes += link_bytes;
        merged.inter_chip_cycles += link_cycles;
        makespan = makespan.max(r.total_cycles + cut_compute.max(cut_sfu) + link_cycles);
        merged.chip_lanes.push(ChipLane {
            chip,
            walk_cycles: r.total_cycles,
            cut_cycles: cut_compute.max(cut_sfu),
            link_cycles,
            link_bytes,
            halo_vertices: part.halo_vertices,
            cut_edges: cut_updates,
        });

        match (&mut merged_cache, r.cache) {
            (None, Some(chip)) => merged_cache = Some(chip),
            (Some(acc), Some(chip)) => merge_cache_results(acc, &chip),
            _ => {}
        }
    }
    merged.total_cycles = makespan;
    merged.cache = merged_cache;
    merged
}

/// Folds one chip's cache outcome into the accumulated result: extensive
/// quantities and byte counters sum, the first chip's per-iteration trace
/// and α histograms stand for the walk.
fn merge_cache_results(acc: &mut CacheSimResult, chip: &CacheSimResult) {
    acc.completed &= chip.completed;
    acc.iterations += chip.iterations;
    acc.rounds = acc.rounds.max(chip.rounds);
    acc.edges_processed += chip.edges_processed;
    acc.evictions += chip.evictions;
    acc.partial_spills += chip.partial_spills;
    acc.refetches += chip.refetches;
    acc.fetched_vertices += chip.fetched_vertices;
    acc.skipped_blocks += chip.skipped_blocks;
    acc.dram_cycles += chip.dram_cycles;
    acc.final_gamma = acc.final_gamma.max(chip.final_gamma);
    acc.gamma_raises += chip.gamma_raises;
    acc.recovery_rounds += chip.recovery_rounds;
    acc.counters.merge(&chip.counters);
    // Tier stacks line up positionally across chips (every chip resolves
    // the same onchip/dram/ssd shape from the shared spec).
    for (a, c) in acc.tiers.iter_mut().zip(&chip.tiers) {
        a.merge(c);
    }
}

/// Directed updates of one iteration: each undirected edge updates both
/// endpoint accumulators.
fn updates_of(s: &IterationStats) -> u64 {
    2 * s.edges
}

/// Cycle cost of one cache iteration. Returns `(compute, sfu_bound)`.
fn iteration_cycles(
    s: &IterationStats,
    f: u64,
    is_gat: bool,
    cfg: &AcceleratorConfig,
    total_macs: u64,
    min_macs: u64,
) -> (u64, u64) {
    let updates = updates_of(s);
    if updates == 0 {
        return (0, 0);
    }
    // Each update: f MACs (weighted accumulate); GAT adds the scalar edge
    // pipeline (add + denominator accumulate).
    let mac_ops = updates * f + if is_gat { 2 * updates } else { 0 };
    let ideal = div_ceil(mac_ops, total_macs);
    let chain = if cfg.enable_agg_lb {
        0
    } else {
        // Unbalanced: the iteration's highest-degree vertex serializes its
        // adder chain on a single CPE.
        s.max_vertex_edges as u64 * CpeArray::vector_op_cycles(f as usize, min_macs as usize)
    };
    let sfu = if is_gat {
        // LeakyReLU + exp per directed update through the SFU columns.
        div_ceil(2 * updates, cfg.sfu_units as u64)
    } else {
        0
    };
    let compute = ideal.max(chain).max(sfu);
    (compute, sfu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnie_graph::reorder::Permutation;
    use gnnie_graph::{generate, Dataset, SyntheticDataset};

    fn paper_setup() -> (AcceleratorConfig, CpeArray) {
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        let arr = CpeArray::new(&cfg);
        (cfg, arr)
    }

    fn degree_ordered(g: &CsrGraph) -> CsrGraph {
        Permutation::descending_degree(g).apply(g)
    }

    fn run(
        cfg: &AcceleratorConfig,
        arr: &CpeArray,
        g: &CsrGraph,
        params: AggregationParams,
    ) -> AggregationReport {
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        simulate_aggregation(cfg, arr, g, params, &mut dram)
    }

    #[test]
    fn absorb_doubles_extensive_quantities() {
        let (cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(200, 1000, 2.0, 5));
        let params = AggregationParams { f_out: 32, is_gat: true };
        let one = run(&cfg, &arr, &g, params);
        let mut two = one.clone();
        two.absorb(&run(&cfg, &arr, &g, params));
        assert_eq!(two.total_cycles, 2 * one.total_cycles);
        assert_eq!(two.edge_updates, 2 * one.edge_updates);
        assert_eq!(two.exp_evals, 2 * one.exp_evals);
        assert_eq!(two.macs_issued, 2 * one.macs_issued);
        assert_eq!(two.vertices, one.vertices, "vertex set is shared, not doubled");
    }

    #[test]
    fn processes_all_edges_once() {
        let (cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(500, 2500, 2.0, 3));
        let r = run(&cfg, &arr, &g, AggregationParams { f_out: 64, is_gat: false });
        assert!(r.cache.as_ref().unwrap().completed);
        assert_eq!(r.edge_updates, 2 * g.num_edges() as u64);
        assert_eq!(r.macs_issued, r.edge_updates * 64);
        assert_eq!(r.exp_evals, 0);
        assert_eq!(r.attention_cycles, 0);
    }

    #[test]
    fn gat_adds_attention_and_sfu_work() {
        let (cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(300, 1500, 2.0, 5));
        let gcn = run(&cfg, &arr, &g, AggregationParams { f_out: 64, is_gat: false });
        let gat = run(&cfg, &arr, &g, AggregationParams { f_out: 64, is_gat: true });
        assert!(gat.attention_cycles > 0);
        assert!(gat.exp_evals == 2 * g.num_edges() as u64 + g.num_vertices() as u64);
        assert!(gat.total_cycles > gcn.total_cycles, "GAT must cost more than GCN");
        assert!(gat.macs_issued > gcn.macs_issued);
    }

    #[test]
    fn lb_speeds_up_powerlaw_aggregation() {
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(800, 6000, 1.9, 7));
        cfg.enable_agg_lb = true;
        let with_lb = run(&cfg, &arr, &g, AggregationParams { f_out: 128, is_gat: false });
        cfg.enable_agg_lb = false;
        let without = run(&cfg, &arr, &g, AggregationParams { f_out: 128, is_gat: false });
        assert!(
            with_lb.compute_cycles < without.compute_cycles,
            "LB {} vs no-LB {}",
            with_lb.compute_cycles,
            without.compute_cycles
        );
    }

    #[test]
    fn cache_policy_beats_id_order_on_dram() {
        let (mut cfg, arr) = paper_setup();
        let raw = generate::powerlaw_chung_lu(1000, 8000, 2.0, 9);
        let ordered = degree_ordered(&raw);
        cfg.enable_cache_policy = true;
        let cp = run(&cfg, &arr, &ordered, AggregationParams { f_out: 128, is_gat: false });
        cfg.enable_cache_policy = false;
        let base = run(&cfg, &arr, &raw, AggregationParams { f_out: 128, is_gat: false });
        assert!(cp.cache_policy_used && !base.cache_policy_used);
        assert!(base.cache.is_none());
        assert!(
            cp.dram_cycles < base.dram_cycles,
            "CP {} vs baseline {}",
            cp.dram_cycles,
            base.dram_cycles
        );
    }

    #[test]
    fn every_cache_policy_kind_completes_the_same_workload() {
        use gnnie_mem::CachePolicyKind;
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(600, 4000, 2.0, 13));
        // A small buffer so the policies actually have to evict.
        cfg.input_buffer_bytes = 32 * 1024;
        let params = AggregationParams { f_out: 64, is_gat: false };
        for kind in CachePolicyKind::ALL {
            cfg.cache_policy = kind;
            let r = run(&cfg, &arr, &g, params);
            let cache = r.cache.as_ref().expect("cache policy enabled");
            assert!(cache.completed, "{kind}");
            assert_eq!(cache.policy, kind.name(), "{kind}");
            assert_eq!(r.edge_updates, 2 * g.num_edges() as u64, "{kind}");
            if kind == CachePolicyKind::Paper {
                assert_eq!(cache.counters.random_bytes(), 0, "paper stays sequential");
            }
        }
    }

    #[test]
    fn total_includes_stalls_and_attention() {
        let (cfg, arr) = paper_setup();
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.2, 3);
        let g = degree_ordered(&ds.graph);
        let r = run(&cfg, &arr, &g, AggregationParams { f_out: 128, is_gat: true });
        assert!(r.total_cycles >= r.attention_cycles);
        assert!(r.total_cycles >= r.compute_cycles);
    }

    #[test]
    fn empty_graph_is_free() {
        let (cfg, arr) = paper_setup();
        let g = CsrGraph::from_edges(8, std::iter::empty());
        let r = run(&cfg, &arr, &g, AggregationParams { f_out: 32, is_gat: false });
        assert_eq!(r.edge_updates, 0);
        assert_eq!(r.compute_cycles, 0);
    }

    #[test]
    fn scaleout_covers_every_edge_and_charges_the_link() {
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(2000, 16000, 2.0, 17));
        let params = AggregationParams { f_out: 128, is_gat: false };
        let single = run(&cfg, &arr, &g, params);
        for chips in [2, 4, 8] {
            cfg.chips = chips;
            let multi = run(&cfg, &arr, &g, params);
            assert_eq!(multi.edge_updates, 2 * g.num_edges() as u64, "{chips} chips");
            assert_eq!(multi.macs_issued, multi.edge_updates * 128, "{chips} chips");
            assert!(multi.inter_chip_bytes > 0, "{chips} chips must move boundary features");
            assert!(multi.inter_chip_cycles > 0, "{chips} chips");
            // At high chip counts the halo traffic can dominate a small
            // graph (the link becomes the bottleneck), so the speedup
            // claim is only made where the partitions are still chunky.
            if chips <= 4 {
                assert!(
                    multi.total_cycles < single.total_cycles,
                    "{chips} chips: makespan {} must beat single-chip {}",
                    multi.total_cycles,
                    single.total_cycles
                );
            }
            let cache = multi.cache.as_ref().expect("cache policy on");
            assert!(cache.completed, "{chips} chips");
            // The caches walk the induced subgraphs; cut edges execute
            // against link-received features instead, one directed update
            // per side. Together they cover the whole graph.
            let induced = cache.edges_processed;
            let cut = (multi.edge_updates - 2 * induced) / 2;
            assert_eq!(induced + cut, g.num_edges() as u64, "{chips} chips");
            assert!(cut > 0, "{chips} chips must cut something on a connected graph");
        }
    }

    #[test]
    fn scaleout_gat_accounting_matches_the_single_chip_formulas() {
        let (mut cfg, arr) = paper_setup();
        cfg.chips = 4;
        cfg.partitioner = gnnie_graph::PartitionerKind::EdgeCut;
        let g = degree_ordered(&generate::powerlaw_chung_lu(600, 4000, 2.0, 5));
        let r = run(&cfg, &arr, &g, AggregationParams { f_out: 64, is_gat: true });
        let (v, e) = (g.num_vertices() as u64, g.num_edges() as u64);
        assert_eq!(r.edge_updates, 2 * e);
        assert_eq!(r.exp_evals, 2 * e + v);
        assert_eq!(r.macs_issued, 2 * e * 64 + 2 * v * 64);
        assert_eq!(r.vertices, v);
    }

    #[test]
    fn scaleout_is_deterministic_across_reruns_and_thread_counts() {
        let (mut cfg, arr) = paper_setup();
        cfg.chips = 4;
        let g = degree_ordered(&generate::powerlaw_chung_lu(800, 6000, 2.0, 7));
        let params = AggregationParams { f_out: 64, is_gat: false };
        let mut reports = Vec::new();
        for threads in [SimThreads::Fixed(1), SimThreads::Fixed(4), SimThreads::Fixed(1)] {
            let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
            let r = simulate_aggregation_with(&cfg, &arr, &g, params, &mut dram, threads);
            reports.push((format!("{r:?}"), *dram.counters()));
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn scaleout_folds_every_chips_dram_counters_into_the_session_model() {
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(500, 3500, 2.0, 3));
        let params = AggregationParams { f_out: 64, is_gat: false };
        cfg.chips = 4;
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let r = simulate_aggregation_with(&cfg, &arr, &g, params, &mut dram, cfg.sim_threads);
        let cache = r.cache.as_ref().expect("cache policy on");
        assert_eq!(
            *dram.counters(),
            cache.counters,
            "session DRAM counters must equal the merged cache counters"
        );
        assert!(dram.counters().total_bytes() > 0);
    }

    #[test]
    fn a_tiered_run_surfaces_per_tier_accounting() {
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(400, 2000, 2.0, 7));
        cfg.tiers = Some(gnnie_mem::TierSpec::Split {
            total_bytes: 64 * 1024,
            mode: gnnie_mem::SplitMode::Workload,
        });
        let params = AggregationParams { f_out: 32, is_gat: false };
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let r = simulate_aggregation(&cfg, &arr, &g, params, &mut dram);
        let cache = r.cache.as_ref().expect("cache policy on");
        assert!(cache.completed);
        assert_eq!(r.edge_updates, 2 * g.num_edges() as u64, "tiering is traffic, not work");
        assert_eq!(cache.tiers.len(), 3, "onchip + dram + ssd backstop");
        assert!(cache.tiers[0].hits > 0, "the hot prefix serves on-chip hits");
        assert_eq!(
            *dram.counters(),
            cache.counters,
            "the hierarchy's DRAM tier must fold into the session channel"
        );
    }

    #[test]
    fn an_untiered_run_reports_no_tier_stats() {
        let (cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(200, 1000, 2.0, 5));
        let r = run(&cfg, &arr, &g, AggregationParams { f_out: 32, is_gat: false });
        assert!(r.cache.as_ref().unwrap().tiers.is_empty());
    }

    #[test]
    fn scaleout_divides_the_tier_budget_and_merges_tier_stats() {
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(600, 4200, 2.0, 11));
        cfg.chips = 4;
        cfg.tiers = Some(gnnie_mem::TierSpec::Split {
            total_bytes: 128 * 1024,
            mode: gnnie_mem::SplitMode::Workload,
        });
        let params = AggregationParams { f_out: 32, is_gat: false };
        let r = run(&cfg, &arr, &g, params);
        let cache = r.cache.as_ref().expect("cache policy on");
        assert_eq!(cache.tiers.len(), 3, "chips share the stack shape");
        let per_chip_hits: u64 = cache.tiers.iter().map(|t| t.hits).sum();
        assert!(per_chip_hits > 0, "merged tier stats must accumulate across chips");
    }

    #[test]
    fn makespan_maxes_over_chips_instead_of_summing() {
        // Guard against merge arithmetic that accidentally sums the chip
        // totals: the makespan must stay below the summed per-chip work,
        // which the extensive fields record.
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(2000, 16000, 2.0, 29));
        let params = AggregationParams { f_out: 128, is_gat: false };
        cfg.chips = 8;
        let eight = run(&cfg, &arr, &g, params);
        let summed_work = eight.compute_cycles + eight.dram_cycles + eight.inter_chip_cycles;
        assert!(
            eight.total_cycles < summed_work,
            "makespan {} should be far below the summed per-chip work {}",
            eight.total_cycles,
            summed_work
        );
    }

    #[test]
    fn bigger_buffer_never_hurts_dram() {
        let (mut cfg, arr) = paper_setup();
        let g = degree_ordered(&generate::powerlaw_chung_lu(600, 4000, 2.0, 11));
        cfg.input_buffer_bytes = 16 * 1024;
        let small = run(&cfg, &arr, &g, AggregationParams { f_out: 128, is_gat: false });
        cfg.input_buffer_bytes = 512 * 1024;
        let large = run(&cfg, &arr, &g, AggregationParams { f_out: 128, is_gat: false });
        assert!(large.dram_cycles <= small.dram_cycles);
    }
}
