//! The CPE array abstraction: row groups, per-row MAC counts, and the
//! cycle cost of the primitive vector operations the mappers issue.

use serde::{Deserialize, Serialize};

use crate::config::AcceleratorConfig;

/// A static description of the CPE array derived from a configuration:
/// per-row MAC counts and group membership, plus op-level cycle helpers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpeArray {
    rows: usize,
    cols: usize,
    macs_per_row: Vec<usize>,
    group_of_row: Vec<usize>,
    num_groups: usize,
}

impl CpeArray {
    /// Builds the array description from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`AcceleratorConfig::validate`]).
    pub fn new(config: &AcceleratorConfig) -> Self {
        config.validate();
        let mut macs_per_row = Vec::with_capacity(config.array_rows);
        let mut group_of_row = Vec::with_capacity(config.array_rows);
        for (gi, g) in config.row_groups.iter().enumerate() {
            for _ in 0..g.rows {
                macs_per_row.push(g.macs_per_cpe);
                group_of_row.push(gi);
            }
        }
        CpeArray {
            rows: config.array_rows,
            cols: config.array_cols,
            macs_per_row,
            group_of_row,
            num_groups: config.row_groups.len(),
        }
    }

    /// Number of CPE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of CPE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of CPEs.
    pub fn num_cpes(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of FM row groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// MACs per CPE in row `r`.
    pub fn macs_in_row(&self, r: usize) -> usize {
        self.macs_per_row[r]
    }

    /// Group index of row `r`.
    pub fn group_of_row(&self, r: usize) -> usize {
        self.group_of_row[r]
    }

    /// Rows belonging to group `g`, in order.
    pub fn rows_in_group(&self, g: usize) -> Vec<usize> {
        (0..self.rows).filter(|&r| self.group_of_row[r] == g).collect()
    }

    /// Total MACs in the array.
    pub fn total_macs(&self) -> usize {
        self.macs_per_row.iter().map(|m| m * self.cols).sum()
    }

    /// Mean MACs per CPE (used by the balanced aggregation model).
    pub fn mean_macs_per_cpe(&self) -> f64 {
        self.total_macs() as f64 / self.num_cpes() as f64
    }

    /// Cycles for one CPE in row `r` to process a (sub)vector MAC op of
    /// `nnz` useful elements: `⌈nnz / |MAC|_r⌉`; zero-length ops are free
    /// (zero-skipping, §IV-A).
    pub fn block_cycles(&self, r: usize, nnz: usize) -> u64 {
        div_ceil(nnz as u64, self.macs_per_row[r] as u64)
    }

    /// Cycles for a vector op of `len` elements on a CPE with `macs` MACs.
    pub fn vector_op_cycles(len: usize, macs: usize) -> u64 {
        div_ceil(len as u64, macs.max(1) as u64)
    }
}

/// Ceiling division helper shared by the cycle models.
pub fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use gnnie_graph::Dataset;

    fn paper_array() -> CpeArray {
        CpeArray::new(&AcceleratorConfig::paper(Dataset::Cora))
    }

    #[test]
    fn row_groups_resolve_per_row() {
        let arr = paper_array();
        assert_eq!(arr.rows(), 16);
        assert_eq!(arr.num_groups(), 3);
        assert_eq!(arr.macs_in_row(0), 4);
        assert_eq!(arr.macs_in_row(10), 5);
        assert_eq!(arr.macs_in_row(15), 6);
        assert_eq!(arr.group_of_row(0), 0);
        assert_eq!(arr.group_of_row(9), 1);
        assert_eq!(arr.group_of_row(13), 2);
        assert_eq!(arr.rows_in_group(1), vec![8, 9, 10, 11]);
    }

    #[test]
    fn totals_match_config() {
        let cfg = AcceleratorConfig::with_design(Design::E, 1024);
        let arr = CpeArray::new(&cfg);
        assert_eq!(arr.total_macs(), cfg.total_macs());
        assert!((arr.mean_macs_per_cpe() - 1216.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn block_cycles_zero_skips() {
        let arr = paper_array();
        assert_eq!(arr.block_cycles(0, 0), 0);
        assert_eq!(arr.block_cycles(0, 1), 1);
        assert_eq!(arr.block_cycles(0, 4), 1);
        assert_eq!(arr.block_cycles(0, 5), 2);
        assert_eq!(arr.block_cycles(15, 12), 2);
    }

    #[test]
    fn vector_op_cycles_rounds_up() {
        assert_eq!(CpeArray::vector_op_cycles(128, 4), 32);
        assert_eq!(CpeArray::vector_op_cycles(129, 4), 33);
        assert_eq!(CpeArray::vector_op_cycles(0, 4), 0);
    }
}
