//! Accelerator configuration: the paper's design points.
//!
//! The evaluated configuration (§VIII-A) is a 16×16 CPE array at 1.3 GHz
//! with the flexible-MAC row groups 4/4/4 rows × 4/5/6 MACs — 1216 MACs in
//! all — 1 MB output buffer, 128 KB weight buffer, and a 256 KB (small
//! datasets) or 512 KB (large datasets) input buffer. The Fig. 17 ablation
//! compares this against uniform-MAC Designs A–D.

use serde::{Deserialize, Serialize};

use gnnie_graph::{Dataset, PartitionerKind};
use gnnie_mem::cache::CachePolicyKind;
use gnnie_mem::{SimThreads, TierSpec};

/// A group of CPE rows sharing a MAC count (the FM architecture, §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowGroup {
    /// Number of CPE rows in the group.
    pub rows: usize,
    /// MAC units per CPE in this group.
    pub macs_per_cpe: usize,
}

/// The design points of the Fig. 17 ablation (§VIII-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Baseline: 4 MACs/CPE uniform (1024 MACs).
    A,
    /// 5 MACs/CPE uniform (1280 MACs).
    B,
    /// 6 MACs/CPE uniform (1536 MACs).
    C,
    /// 7 MACs/CPE uniform (1792 MACs).
    D,
    /// GNNIE's flexible MAC: rows 1–8 × 4, 9–12 × 5, 13–16 × 6 (1216 MACs).
    E,
}

impl Design {
    /// All five designs in paper order.
    pub const ALL: [Design; 5] = [Design::A, Design::B, Design::C, Design::D, Design::E];

    /// The row-group layout of this design for a 16-row array.
    pub fn row_groups(self) -> Vec<RowGroup> {
        match self {
            Design::A => vec![RowGroup { rows: 16, macs_per_cpe: 4 }],
            Design::B => vec![RowGroup { rows: 16, macs_per_cpe: 5 }],
            Design::C => vec![RowGroup { rows: 16, macs_per_cpe: 6 }],
            Design::D => vec![RowGroup { rows: 16, macs_per_cpe: 7 }],
            Design::E => vec![
                RowGroup { rows: 8, macs_per_cpe: 4 },
                RowGroup { rows: 4, macs_per_cpe: 5 },
                RowGroup { rows: 4, macs_per_cpe: 6 },
            ],
        }
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Design {}",
            match self {
                Design::A => "A",
                Design::B => "B",
                Design::C => "C",
                Design::D => "D",
                Design::E => "E",
            }
        )
    }
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// CPE array rows (`M`).
    pub array_rows: usize,
    /// CPE array columns (`N`), each with a dedicated MPE.
    pub array_cols: usize,
    /// Flexible-MAC row groups, first rows to last; MAC counts must be
    /// monotonically nondecreasing (§IV-C).
    pub row_groups: Vec<RowGroup>,
    /// Clock frequency in Hz (paper: 1.3 GHz at 32 nm).
    pub clock_hz: f64,
    /// Input buffer capacity in bytes (256 KB small / 512 KB large).
    pub input_buffer_bytes: usize,
    /// Output buffer capacity in bytes (1 MB).
    pub output_buffer_bytes: usize,
    /// Weight buffer capacity in bytes (128 KB, double-buffered).
    pub weight_buffer_bytes: usize,
    /// Psum slots per MPE (rabbit/turtle in-flight vertex budget, §IV-B).
    pub mpe_psum_slots: usize,
    /// Special-function units (exp LUT, LeakyReLU, dividers): the paper
    /// interleaves SFU columns with the CPE array (§III); two columns of
    /// 16 gives 32.
    pub sfu_units: usize,
    /// Cache eviction threshold γ (§VI; paper uses a static 5).
    pub gamma: u32,
    /// Enable the flexible-MAC workload reordering (FM).
    pub enable_fm: bool,
    /// Enable load redistribution between CPE row pairs (LR).
    pub enable_lr: bool,
    /// Enable degree-balanced edge distribution during Aggregation (LB).
    pub enable_agg_lb: bool,
    /// Enable the degree-aware cache replacement policy (CP); when off,
    /// vertices are processed in id order with random DRAM fetches.
    pub enable_cache_policy: bool,
    /// Which replacement policy drives the cache walk when
    /// `enable_cache_policy` is on (the paper's α/γ policy, or one of the
    /// LRU/LFU/Belady ablation comparators).
    pub cache_policy: CachePolicyKind,
    /// Worker threads for the sharded simulation loops (the per-vertex
    /// Weighting profile and the cache walk's vertex scans). Purely a
    /// host-side knob: reports are bit-identical at any setting. The
    /// constructors default it from `GNNIE_SIM_THREADS` (unset = the
    /// machine's available parallelism); `RunOptions::sim_threads` and
    /// `gnnie run/serve --sim-threads` override per run.
    pub sim_threads: SimThreads,
    /// Simulated accelerator chips. 1 reproduces the single-chip engine
    /// exactly; above 1 the Aggregation graph is partitioned, each chip
    /// walks its own partition with its own cache and DRAM channel, and
    /// boundary features cross the inter-chip link.
    pub chips: usize,
    /// How the graph is split across chips when `chips > 1`.
    pub partitioner: PartitionerKind,
    /// Inter-chip link bandwidth in bytes per accelerator cycle
    /// (default 32 ≈ 41.6 GB/s at 1.3 GHz, an NVLink-class serial link).
    pub link_bytes_per_cycle: u64,
    /// Fixed per-transfer link latency in cycles (serialization +
    /// handshake before the first byte lands).
    pub link_latency_cycles: u64,
    /// Tiered feature-cache hierarchy (on-chip → DRAM → SSD) for the
    /// Aggregation cache walk. `None` keeps the flat single-channel
    /// DRAM engine, byte-identical to the pre-tier simulator.
    pub tiers: Option<TierSpec>,
}

impl AcceleratorConfig {
    /// The paper's evaluated configuration for `dataset` (§VIII-A): input
    /// buffer 256 KB for Cora/Citeseer, 512 KB for Pubmed/PPI/Reddit; all
    /// optimizations on.
    pub fn paper(dataset: Dataset) -> Self {
        let input_buffer_bytes = match dataset {
            Dataset::Cora | Dataset::Citeseer => 256 * 1024,
            Dataset::Pubmed | Dataset::Ppi | Dataset::Reddit => 512 * 1024,
        };
        Self::with_design(Design::E, input_buffer_bytes)
    }

    /// A configuration with `design`'s MAC layout and all optimizations on.
    pub fn with_design(design: Design, input_buffer_bytes: usize) -> Self {
        AcceleratorConfig {
            array_rows: 16,
            array_cols: 16,
            row_groups: design.row_groups(),
            clock_hz: 1.3e9,
            input_buffer_bytes,
            output_buffer_bytes: 1024 * 1024,
            weight_buffer_bytes: 128 * 1024,
            mpe_psum_slots: 64,
            sfu_units: 32,
            gamma: 5,
            enable_fm: design == Design::E,
            enable_lr: design == Design::E,
            enable_agg_lb: true,
            enable_cache_policy: true,
            cache_policy: CachePolicyKind::Paper,
            sim_threads: SimThreads::from_env(),
            chips: 1,
            partitioner: PartitionerKind::Range,
            link_bytes_per_cycle: 32,
            link_latency_cycles: 500,
            tiers: None,
        }
    }

    /// The ablation baseline ("Design A" in §VIII-E): uniform 4 MACs/CPE,
    /// no FM, no LR, no aggregation LB, no cache policy.
    pub fn ablation_baseline(input_buffer_bytes: usize) -> Self {
        let mut cfg = Self::with_design(Design::A, input_buffer_bytes);
        cfg.enable_agg_lb = false;
        cfg.enable_cache_policy = false;
        cfg
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if row groups don't cover `array_rows`, MAC counts are not
    /// monotonically nondecreasing, or any size is zero.
    pub fn validate(&self) {
        assert!(self.array_rows > 0 && self.array_cols > 0, "array must be nonempty");
        let covered: usize = self.row_groups.iter().map(|g| g.rows).sum();
        assert_eq!(covered, self.array_rows, "row groups must cover all rows");
        let mut prev = 0;
        for g in &self.row_groups {
            assert!(g.macs_per_cpe >= prev, "MAC counts must be nondecreasing (§IV-C)");
            assert!(g.macs_per_cpe > 0, "every CPE needs at least one MAC");
            prev = g.macs_per_cpe;
        }
        assert!(self.clock_hz > 0.0, "clock must be positive");
        assert!(
            self.input_buffer_bytes > 0
                && self.output_buffer_bytes > 0
                && self.weight_buffer_bytes > 0,
            "buffers must be nonempty"
        );
        assert!(self.mpe_psum_slots > 0, "MPEs need psum slots");
        assert!(self.sfu_units > 0, "need at least one SFU");
        if let SimThreads::Fixed(n) = self.sim_threads {
            assert!(n > 0, "sim_threads must be at least 1");
        }
        assert!(self.chips >= 1, "chips must be at least 1");
        if self.chips > 1 {
            assert!(
                self.link_bytes_per_cycle > 0,
                "inter-chip link bandwidth must be positive"
            );
        }
        if let Some(TierSpec::Split { total_bytes, .. }) = self.tiers {
            assert!(total_bytes > 0, "tier split budget must be positive");
        }
    }

    /// MACs per CPE in array row `r` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `r >= array_rows`.
    pub fn macs_in_row(&self, r: usize) -> usize {
        assert!(r < self.array_rows, "row {r} out of range");
        let mut base = 0;
        for g in &self.row_groups {
            if r < base + g.rows {
                return g.macs_per_cpe;
            }
            base += g.rows;
        }
        unreachable!("validate() guarantees coverage")
    }

    /// Total MAC units in the array.
    pub fn total_macs(&self) -> usize {
        self.row_groups.iter().map(|g| g.rows * g.macs_per_cpe * self.array_cols).sum()
    }

    /// Number of CPEs.
    pub fn num_cpes(&self) -> usize {
        self.array_rows * self.array_cols
    }

    /// Weight-buffer bytes needed to keep all `array_cols` CPE columns
    /// occupied for a layer with `f_in` input features at
    /// `bytes_per_weight`, double-buffered — the paper's §VIII-A sizing
    /// arithmetic ("4K×16×2 = 128KB" for Citeseer's ~4K features).
    pub fn weight_buffer_required(&self, f_in: usize, bytes_per_weight: usize) -> usize {
        f_in * self.array_cols * bytes_per_weight * 2
    }

    /// `true` if the configured weight buffer can double-buffer a layer
    /// with `f_in` input features at `bytes_per_weight`.
    pub fn weight_buffer_fits(&self, f_in: usize, bytes_per_weight: usize) -> bool {
        self.weight_buffer_required(f_in, bytes_per_weight) <= self.weight_buffer_bytes
    }

    /// Peak throughput in TOPS (2 ops per MAC per cycle).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.total_macs() as f64 * self.clock_hz / 1e12
    }

    /// Seconds per clock cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_e_has_1216_macs() {
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        cfg.validate();
        assert_eq!(cfg.total_macs(), 1216);
        assert_eq!(cfg.num_cpes(), 256);
        // Paper Table IV: peak 3.17 TOPS (2·1216·1.3 GHz = 3.16).
        assert!((cfg.peak_tops() - 3.16).abs() < 0.02, "peak {}", cfg.peak_tops());
    }

    #[test]
    fn design_mac_totals_match_paper() {
        let totals: Vec<usize> = Design::ALL
            .iter()
            .map(|&d| AcceleratorConfig::with_design(d, 1024).total_macs())
            .collect();
        assert_eq!(totals, vec![1024, 1280, 1536, 1792, 1216]);
    }

    #[test]
    fn macs_in_row_follows_groups() {
        let cfg = AcceleratorConfig::with_design(Design::E, 1024);
        assert_eq!(cfg.macs_in_row(0), 4);
        assert_eq!(cfg.macs_in_row(7), 4);
        assert_eq!(cfg.macs_in_row(8), 5);
        assert_eq!(cfg.macs_in_row(11), 5);
        assert_eq!(cfg.macs_in_row(12), 6);
        assert_eq!(cfg.macs_in_row(15), 6);
    }

    #[test]
    fn weight_buffer_sizing_reproduces_the_papers_arithmetic() {
        // §VIII-A: "for the dataset with the largest feature vector
        // (~4K for CS), to keep 16 CPE columns occupied, the buffer size
        // is 4K×16×2 (for double-buffering) = 128KB" at 1-byte weights.
        let cfg = AcceleratorConfig::paper(Dataset::Citeseer);
        let f_cs = Dataset::Citeseer.spec().feature_len; // 3703
        assert!(cfg.weight_buffer_fits(f_cs, 1), "CS must fit the 128KB buffer");
        assert_eq!(cfg.weight_buffer_required(4096, 1), 128 * 1024);
        // 4-byte weights would not fit — the 1-byte quantization is what
        // makes the 128KB buffer work (ablation A3).
        assert!(!cfg.weight_buffer_fits(f_cs, 4));
        // Every Table II dataset fits at 1 byte.
        for d in Dataset::ALL {
            assert!(cfg.weight_buffer_fits(d.spec().feature_len, 1), "{d:?}");
        }
    }

    #[test]
    fn input_buffer_depends_on_dataset() {
        assert_eq!(AcceleratorConfig::paper(Dataset::Cora).input_buffer_bytes, 256 * 1024);
        assert_eq!(AcceleratorConfig::paper(Dataset::Reddit).input_buffer_bytes, 512 * 1024);
    }

    #[test]
    fn ablation_baseline_disables_everything() {
        let cfg = AcceleratorConfig::ablation_baseline(256 * 1024);
        assert!(!cfg.enable_fm && !cfg.enable_lr && !cfg.enable_agg_lb);
        assert!(!cfg.enable_cache_policy);
        assert_eq!(cfg.total_macs(), 1024);
    }

    #[test]
    #[should_panic(expected = "row groups must cover all rows")]
    fn validate_rejects_uncovered_rows() {
        let mut cfg = AcceleratorConfig::with_design(Design::A, 1024);
        cfg.row_groups = vec![RowGroup { rows: 10, macs_per_cpe: 4 }];
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn validate_rejects_decreasing_macs() {
        let mut cfg = AcceleratorConfig::with_design(Design::E, 1024);
        cfg.row_groups =
            vec![RowGroup { rows: 8, macs_per_cpe: 6 }, RowGroup { rows: 8, macs_per_cpe: 4 }];
        cfg.validate();
    }

    #[test]
    fn design_display() {
        assert_eq!(Design::E.to_string(), "Design E");
    }

    #[test]
    #[should_panic(expected = "sim_threads must be at least 1")]
    fn validate_rejects_zero_sim_threads() {
        let mut cfg = AcceleratorConfig::with_design(Design::E, 1024);
        cfg.sim_threads = SimThreads::Fixed(0);
        cfg.validate();
    }

    #[test]
    fn sim_threads_is_a_pure_host_knob() {
        // Any fixed worker count validates; equality of configs ignores
        // nothing — two configs differing only in sim_threads are unequal
        // as values but produce identical reports (asserted end to end in
        // the engine and CLI suites).
        for threads in [SimThreads::Auto, SimThreads::Fixed(1), SimThreads::Fixed(8)] {
            let mut cfg = AcceleratorConfig::paper(Dataset::Cora);
            cfg.sim_threads = threads;
            cfg.validate();
            assert!(cfg.sim_threads.resolve() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "chips must be at least 1")]
    fn validate_rejects_zero_chips() {
        let mut cfg = AcceleratorConfig::with_design(Design::E, 1024);
        cfg.chips = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "link bandwidth must be positive")]
    fn validate_rejects_a_zero_bandwidth_link_on_multi_chip() {
        let mut cfg = AcceleratorConfig::with_design(Design::E, 1024);
        cfg.chips = 4;
        cfg.link_bytes_per_cycle = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "tier split budget must be positive")]
    fn validate_rejects_an_empty_tier_split_budget() {
        let mut cfg = AcceleratorConfig::with_design(Design::E, 1024);
        cfg.tiers = Some(TierSpec::Split { total_bytes: 0, mode: gnnie_mem::SplitMode::Even });
        cfg.validate();
    }

    #[test]
    fn explicit_tier_budgets_may_be_degenerate() {
        // Zero-capacity explicit tiers are a legitimate degenerate
        // hierarchy (the backstop absorbs everything); only the split
        // modes need a real budget to divide.
        let mut cfg = AcceleratorConfig::paper(Dataset::Cora);
        cfg.tiers = Some(TierSpec::Explicit(gnnie_mem::TierBudgets {
            onchip_bytes: 0,
            dram_bytes: 0,
            ssd_bytes: Some(0),
        }));
        cfg.validate();
    }

    #[test]
    fn single_chip_defaults_and_multi_chip_knobs_validate() {
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        assert_eq!(cfg.chips, 1);
        assert_eq!(cfg.partitioner, PartitionerKind::Range);
        let mut multi = cfg.clone();
        multi.chips = 8;
        multi.partitioner = PartitionerKind::EdgeCut;
        multi.validate();
        // A single chip never touches the link, so its bandwidth may be
        // anything, including zero.
        let mut single = cfg;
        single.link_bytes_per_cycle = 0;
        single.validate();
    }

    #[test]
    fn paper_config_selects_the_paper_cache_policy() {
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        assert_eq!(cfg.cache_policy, CachePolicyKind::Paper);
        // Ablation comparators swap in without touching anything else.
        let mut ablated = cfg.clone();
        ablated.cache_policy = CachePolicyKind::Belady;
        ablated.validate();
        assert_eq!(ablated.total_macs(), cfg.total_macs());
    }
}
