//! The end-to-end inference engine: runs every layer of a model through
//! the Weighting and Aggregation cycle models, charges energy, and emits
//! an [`InferenceReport`].
//!
//! Phase orchestration per model (paper §II–V):
//!
//! * **GCN** — Weighting (`hW`, zero-skipped on layer 0) then normalized
//!   sum Aggregation over the cached subgraphs.
//! * **GraphSAGE** — Weighting, then Aggregation over the *sampled*
//!   neighborhood graph (Table III: 25 neighbors; sampling cost included
//!   in preprocessing).
//! * **GAT** — Weighting, the two linear-complexity attention dot passes,
//!   per-edge softmax pipeline, weighted Aggregation.
//! * **GINConv** — Weighting (first MLP linear), sum Aggregation, second
//!   MLP linear as an extra graph-free Weighting pass.
//! * **DiffPool** — embedding GCN + pooling GCN on the full graph, the
//!   coarsening matmuls (`SᵀZ`, `AS`, `Sᵀ(AS)`), then the remaining
//!   layers on the coarsened (dense) level.

use gnnie_gnn::model::{GnnModel, ModelConfig};
use gnnie_graph::reorder::Permutation;
use gnnie_graph::{CsrGraph, EdgeList, GraphDataset};
use gnnie_mem::{DramCounters, EnergyLedger, HbmModel, SimPool, SimThreads};
use gnnie_obs::Obs;
use gnnie_tensor::rlc;

use crate::aggregation::{simulate_aggregation_with, AggregationParams, AggregationReport};
use crate::config::AcceleratorConfig;
use crate::cpe::{div_ceil, CpeArray};
use crate::energy::{static_energy_pj, ActivityCounts, OpEnergy};
use crate::report::{InferenceReport, LayerReport};
use crate::weighting::{
    simulate_weighting_pooled, BlockProfile, WeightingParams, WeightingReport,
};

/// Seed stream for the engine's GraphSAGE neighborhood sampling. The
/// cycle model only needs the sampled *counts*, so it keeps its own seed;
/// the functional datapath (`verify`) samples with the golden layer's own
/// seed instead.
pub const SAGE_ENGINE_SEED: u64 = 0x5a6e_0000_0000_0000;

/// Bytes per RLC-encoded nonzero on the sparse input layer (the 21-bit
/// run/value pair of `gnnie-tensor::rlc`, rounded up to whole bytes).
const RLC_BYTES_PER_NNZ: u64 = rlc::PAIR_BITS.div_ceil(8) as u64;

/// The GNNIE inference engine (cycle/energy model).
#[derive(Debug, Clone)]
pub struct Engine {
    config: AcceleratorConfig,
    array: CpeArray,
    ops: OpEnergy,
}

impl Engine {
    /// Creates an engine for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AcceleratorConfig) -> Self {
        config.validate();
        let array = CpeArray::new(&config);
        Engine { config, array, ops: OpEnergy::paper_32nm() }
    }

    /// Overrides the energy constants (for what-if studies).
    pub fn with_op_energy(mut self, ops: OpEnergy) -> Self {
        self.ops = ops;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The CPE array description.
    pub fn array(&self) -> &CpeArray {
        &self.array
    }

    /// Runs one inference of `model` over `ds` and reports cycles, DRAM
    /// traffic, and energy.
    ///
    /// Equivalent to [`Engine::begin`] followed by
    /// [`RunSession::run_to_completion`] and [`RunSession::finish`]; the
    /// serving path drives the phases individually instead so consecutive
    /// batches can pipeline Weighting under Aggregation.
    ///
    /// The dataset may come from the Table II synthesizer or from
    /// `gnnie-ingest`'s registry (edge-list/CSR files, `.gnniecsr`
    /// snapshots) — the engine consumes both identically, and equal
    /// datasets produce byte-identical reports regardless of source.
    pub fn run(&self, model: &ModelConfig, ds: &GraphDataset) -> InferenceReport {
        self.run_with(model, ds, RunOptions::default())
    }

    /// The options-driven single-shot entry point: one inference of
    /// `model` over `ds` under `opts` — weight residency, a sim-thread
    /// override, and the observability bundle all ride on
    /// [`RunOptions`]. [`Engine::run`] is exactly
    /// `run_with(m, ds, RunOptions::default())`; every option is
    /// host-side only, so the report is bit-identical across `sim_threads`
    /// settings and untouched by an enabled `obs` bundle.
    pub fn run_with(
        &self,
        model: &ModelConfig,
        ds: &GraphDataset,
        opts: RunOptions,
    ) -> InferenceReport {
        let mut session = self.begin_with(model, ds, opts);
        session.run_to_completion();
        session.finish()
    }

    /// [`Engine::run`] with an observability bundle attached.
    #[deprecated(note = "use run_with with RunOptions { obs, .. } instead")]
    pub fn run_observed(
        &self,
        model: &ModelConfig,
        ds: &GraphDataset,
        obs: &Obs,
    ) -> InferenceReport {
        self.run_with(model, ds, RunOptions { obs: obs.clone(), ..RunOptions::default() })
    }

    /// Starts a phased run with default options: performs the one-time
    /// preprocessing and returns the session holding the per-run state.
    pub fn begin<'a>(&'a self, model: &'a ModelConfig, ds: &'a GraphDataset) -> RunSession<'a> {
        self.begin_with(model, ds, RunOptions::default())
    }

    /// Starts a phased run of `model` over `ds`.
    ///
    /// Performs preprocessing (§VI + §IV-C): degree binning/reordering of
    /// the graph and linear-time workload binning of the feature blocks.
    /// Both are linear scans; charged at one element per cycle on the
    /// controller. Included in all reported speedups (§VIII-B).
    pub fn begin_with<'a>(
        &'a self,
        model: &'a ModelConfig,
        ds: &'a GraphDataset,
        opts: RunOptions,
    ) -> RunSession<'a> {
        // The worker policy is resolved once per run (see the pool note
        // below); `RunOptions::sim_threads` overrides the configuration's
        // knob for this run only.
        let pool = SimPool::new(opts.sim_threads.unwrap_or(self.config.sim_threads));
        self.begin_pooled(model, ds, opts, &pool)
    }

    /// Starts a phased run like [`Engine::begin_with`], but dispatching
    /// the sharded simulation loops through a caller-provided [`SimPool`]
    /// instead of resolving a fresh one per session.
    ///
    /// This is the serving daemon's amortization hook: a long-lived
    /// server creates one [`SimPool::persistent`] and shares it across
    /// every request's `RunSession`, so the per-region worker spawns the
    /// scoped pool pays are replaced by channel dispatch to threads that
    /// already exist. `opts.sim_threads` is ignored here — the pool *is*
    /// the thread policy. Cloning a pool handle is cheap (persistent
    /// clones share the same workers), and reports stay bit-identical to
    /// any other pool width by the sharding contract.
    pub fn begin_pooled<'a>(
        &'a self,
        model: &'a ModelConfig,
        ds: &'a GraphDataset,
        opts: RunOptions,
        pool: &SimPool,
    ) -> RunSession<'a> {
        let mut dram = HbmModel::hbm2_256gbps(self.config.clock_hz);
        let v = ds.graph.num_vertices();
        let e = ds.graph.num_edges();

        let agg_graph = if self.config.enable_cache_policy {
            Permutation::descending_degree(&ds.graph).apply(&ds.graph)
        } else {
            ds.graph.clone()
        };
        // Degree binning reads the CSR offsets (V words) and bins in
        // place; the relabeled adjacency is rewritten by streaming the
        // edge array through DRAM once (read + write at bandwidth).
        // Workload binning scans V·M block descriptors across the M row
        // banks in parallel (V cycles).
        let mut preprocessing_cycles = 2 * v as u64;
        if self.config.enable_cache_policy {
            let edge_array_bytes = 2 * e as u64 * 4;
            preprocessing_cycles +=
                dram.read_seq(edge_array_bytes) + dram.write_seq(edge_array_bytes);
        }
        if model.model == GnnModel::GraphSage {
            // Sampling via the pregenerated random stream: one draw per
            // kept neighbor (§VIII-B includes this cost).
            let k = model.sample_size.unwrap_or(25);
            let sampled: u64 = (0..v).map(|u| ds.graph.degree(u).min(k) as u64).sum();
            preprocessing_cycles += sampled;
        }

        // Every phase dispatches through the session's pool handle (a
        // `SimPool` is a width dispatcher — scoped pools spawn workers
        // per parallel region, persistent pools feed long-lived ones —
        // and the aggregation path forwards the width into the cache
        // walk's own handle via `CacheConfig::sim_threads`).
        let pool = pool.clone();

        RunSession {
            engine: self,
            model,
            ds,
            opts,
            pool,
            agg_graph,
            dram,
            counts: ActivityCounts::default(),
            layers: Vec::new(),
            preprocessing_cycles,
            coarsening_cycles: 0,
            cursor: 0,
            pending_weighting: None,
            diffpool_done: false,
        }
    }

    /// One Weighting phase, with activity accounting.
    #[allow(clippy::too_many_arguments)]
    fn weighting_phase(
        &self,
        ds: &GraphDataset,
        _layer: usize,
        f_in: usize,
        f_out: usize,
        sparse_input: bool,
        weights_resident: bool,
        dram: &mut HbmModel,
        counts: &mut ActivityCounts,
        pool: &SimPool,
    ) -> WeightingReport {
        let v = ds.graph.num_vertices();
        let profile = if sparse_input {
            BlockProfile::from_sparse_pooled(&ds.features, self.array.rows(), pool)
        } else {
            BlockProfile::dense(v, f_in, self.array.rows())
        };
        let params = WeightingParams {
            f_out,
            feature_bytes_per_nnz: if sparse_input { RLC_BYTES_PER_NNZ } else { 4 },
            weight_bytes_per_elem: 1,
            weights_resident,
        };
        let report =
            simulate_weighting_pooled(&self.config, &self.array, &profile, params, dram, pool);
        self.charge_weighting(&report, v as u64, f_out as u64, counts);
        report
    }

    fn charge_weighting(
        &self,
        report: &WeightingReport,
        vertices: u64,
        f_out: u64,
        counts: &mut ActivityCounts,
    ) {
        counts.macs += report.macs_issued;
        // Quantized operands: ~2 spad bytes per MAC (feature + weight).
        counts.spad_bytes += 2 * report.macs_issued;
        // MPE accumulates one partial per nonzero block per output column.
        let nonzero_blocks =
            (vertices * self.array.rows() as u64).saturating_sub(report.zero_blocks_skipped);
        counts.mpe_updates += nonzero_blocks * f_out;
        counts.input_buf_bytes += report.feature_bytes;
        counts.weight_buf_bytes += report.weight_bytes;
        counts.dram_input_bytes += report.feature_bytes;
        counts.dram_weight_bytes += report.weight_bytes;
    }

    /// One Aggregation phase, with activity accounting.
    fn aggregation_phase(
        &self,
        graph: &CsrGraph,
        f_out: usize,
        is_gat: bool,
        dram: &mut HbmModel,
        counts: &mut ActivityCounts,
        pool: &SimPool,
    ) -> AggregationReport {
        let report = simulate_aggregation_with(
            &self.config,
            &self.array,
            graph,
            AggregationParams { f_out, is_gat },
            dram,
            SimThreads::Fixed(pool.width()),
        );
        counts.macs += report.macs_issued;
        counts.sfu_ops +=
            2 * report.exp_evals + if is_gat { report.vertices * f_out as u64 } else { 0 };
        counts.mpe_updates += report.edge_updates;
        // Each edge update reads both endpoint vectors from the input
        // buffer and read-modify-writes the psum in the output buffer.
        counts.input_buf_bytes += report.edge_updates * f_out as u64 * 4;
        counts.output_buf_bytes += 2 * report.edge_updates * f_out as u64 * 4;
        if let Some(cache) = &report.cache {
            counts.dram_input_bytes += cache.counters.seq_read_bytes;
            counts.dram_output_bytes += cache.counters.seq_write_bytes;
        } else {
            let _ = dram;
        }
        report
    }

    /// DiffPool orchestration: embed + pool GNNs on the full graph,
    /// coarsening matmuls, then the remaining stack on the dense level.
    #[allow(clippy::too_many_arguments)]
    fn run_diffpool(
        &self,
        model: &ModelConfig,
        ds: &GraphDataset,
        agg_graph: &CsrGraph,
        weights_resident: bool,
        dram: &mut HbmModel,
        counts: &mut ActivityCounts,
        layers: &mut Vec<LayerReport>,
        coarsening_cycles: &mut u64,
        pool: &SimPool,
    ) {
        let v = ds.graph.num_vertices() as u64;
        let e = ds.graph.num_edges() as u64;
        let c = model.diffpool_clusters.unwrap_or(1) as u64;
        let h = model.hidden as u64;
        let f_in = model.layers[0].f_in;
        let total_macs = self.array.total_macs() as u64;
        let resident = weights_resident;

        // Embedding GCN: F⁰ → hidden.
        let w_embed =
            self.weighting_phase(ds, 0, f_in, model.hidden, true, resident, dram, counts, pool);
        let a_embed =
            self.aggregation_phase(agg_graph, model.hidden, false, dram, counts, pool);
        layers.push(LayerReport { layer: 0, weighting: w_embed, aggregation: a_embed });

        // Pooling GCN: F⁰ → C, plus the row softmax through the SFUs.
        let w_pool =
            self.weighting_phase(ds, 0, f_in, c as usize, true, resident, dram, counts, pool);
        let mut a_pool =
            self.aggregation_phase(agg_graph, c as usize, false, dram, counts, pool);
        let softmax_cycles = div_ceil(v * c, self.config.sfu_units as u64);
        a_pool.total_cycles += softmax_cycles;
        counts.sfu_ops += v * c;
        layers.push(LayerReport { layer: 1, weighting: w_pool, aggregation: a_pool });

        // Coarsening: X' = SᵀZ, T = AS, A' = SᵀT. S streams through DRAM
        // (it is far larger than any on-chip buffer).
        let matmul_macs = v * c * h + 2 * e * c + v * c * c;
        let compute = div_ceil(matmul_macs, total_macs);
        let s_bytes = v * c * 4;
        let stream = dram.read_seq(s_bytes) + dram.write_seq(c * h * 4 + c * c * 4);
        counts.macs += matmul_macs;
        counts.dram_input_bytes += s_bytes;
        counts.dram_output_bytes += c * h * 4 + c * c * 4;
        *coarsening_cycles += compute.max(stream);

        // Remaining layers on the coarsened dense level: Weighting on C
        // vertices plus a dense-adjacency aggregation matmul.
        for (li, spec) in model.layers.iter().enumerate().skip(1) {
            let f_in_l = if li == 1 { h as usize } else { spec.f_in };
            let profile = BlockProfile::dense(c as usize, f_in_l, self.array.rows());
            let params = WeightingParams {
                f_out: spec.f_out,
                feature_bytes_per_nnz: 4,
                weight_bytes_per_elem: 1,
                weights_resident: resident,
            };
            let report = simulate_weighting_pooled(
                &self.config,
                &self.array,
                &profile,
                params,
                dram,
                pool,
            );
            self.charge_weighting(&report, c, spec.f_out as u64, counts);
            let dense_agg = div_ceil(c * c * spec.f_out as u64, total_macs);
            counts.macs += c * c * spec.f_out as u64;
            *coarsening_cycles += dense_agg;
            layers.push(LayerReport {
                layer: li + 1,
                weighting: report,
                aggregation: AggregationReport::empty(),
            });
        }
    }
}

/// Options for a run ([`Engine::run_with`] / [`Engine::begin_with`]).
///
/// Every field is host-side only: none of them change the simulated
/// cycles, traffic, or energy in the report.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// The model's layer weights are already resident on chip — an
    /// earlier request of a model-homogeneous serving batch streamed
    /// them — so no Weighting phase pays the weight DRAM load.
    pub weights_resident: bool,
    /// Worker threads for this run's sharded simulation loops, overriding
    /// `AcceleratorConfig::sim_threads` (`None` = use the config's knob).
    /// Host-side only: the report is bit-identical at any setting.
    pub sim_threads: Option<SimThreads>,
    /// Observability bundle: the finished report's span timeline and
    /// metrics land here. The default ([`Obs::off`]) records nothing and
    /// changes nothing.
    pub obs: Obs,
}

/// A phased inference run: the per-run mutable state of one
/// `(model, dataset)` simulation, with the Weighting and Aggregation
/// phases individually steppable.
///
/// Produced by [`Engine::begin`]/[`Engine::begin_with`] (which charge the
/// one-time preprocessing). A serial caller just uses
/// [`run_to_completion`](RunSession::run_to_completion); the serving
/// subsystem instead alternates [`run_weighting`](RunSession::run_weighting)
/// and [`run_aggregation`](RunSession::run_aggregation) so that, across
/// concurrent sessions, batch *i+1*'s Weighting overlaps batch *i*'s
/// Aggregation on the two engine resources. [`finish`](RunSession::finish)
/// charges writeback and energy and emits the [`InferenceReport`].
#[derive(Debug)]
pub struct RunSession<'a> {
    engine: &'a Engine,
    model: &'a ModelConfig,
    ds: &'a GraphDataset,
    opts: RunOptions,
    /// The run's worker pool, shared across every phase.
    pool: SimPool,
    agg_graph: CsrGraph,
    dram: HbmModel,
    counts: ActivityCounts,
    layers: Vec<LayerReport>,
    preprocessing_cycles: u64,
    coarsening_cycles: u64,
    /// Next layer index awaiting phases (flat models).
    cursor: usize,
    /// Weighting report of `cursor`, awaiting its Aggregation.
    pending_weighting: Option<WeightingReport>,
    /// DiffPool's irregular schedule ran (all layers emitted).
    diffpool_done: bool,
}

impl<'a> RunSession<'a> {
    /// The engine driving this session.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The model under simulation.
    pub fn model(&self) -> &ModelConfig {
        self.model
    }

    /// Cycles charged to the one-time preprocessing.
    pub fn preprocessing_cycles(&self) -> u64 {
        self.preprocessing_cycles
    }

    /// Attaches an observability bundle (equivalent to having passed it
    /// in [`RunOptions::obs`]): [`finish`](RunSession::finish) will emit
    /// the run's span timeline onto its trace and record its metrics
    /// into its registry. The default bundle is off, and a disabled
    /// bundle costs one branch — simulated cycles and the report are
    /// identical either way.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.opts.obs = obs;
    }

    /// Whether every phase of the run has executed ([`finish`] is legal).
    ///
    /// [`finish`]: RunSession::finish
    pub fn is_complete(&self) -> bool {
        if self.model.model == GnnModel::DiffPool {
            self.diffpool_done
        } else {
            self.pending_weighting.is_none() && self.cursor == self.model.layers.len()
        }
    }

    /// Runs the Weighting phase of the current layer (all GAT heads, plus
    /// GINConv's second MLP linear) and returns its cycles.
    ///
    /// # Panics
    ///
    /// Panics on a DiffPool model (its irregular schedule runs through
    /// [`run_diffpool`](RunSession::run_diffpool)), if the current
    /// layer's Weighting already ran, or if the run is complete.
    pub fn run_weighting(&mut self) -> u64 {
        assert_ne!(
            self.model.model,
            GnnModel::DiffPool,
            "DiffPool phases are driven by run_diffpool"
        );
        assert!(self.pending_weighting.is_none(), "Weighting already ran for this layer");
        let spec = *self
            .model
            .layers
            .get(self.cursor)
            .unwrap_or_else(|| panic!("no layer {} to weight", self.cursor));
        let resident = self.opts.weights_resident;
        let mut weighting = self.engine.weighting_phase(
            self.ds,
            self.cursor,
            spec.f_in,
            spec.f_out,
            spec.sparse_input,
            resident,
            &mut self.dram,
            &mut self.counts,
            &self.pool,
        );
        if self.model.model == GnnModel::GinConv {
            // Second MLP linear: dense F_out → F_out pass.
            let extra = self.engine.weighting_phase(
                self.ds,
                self.cursor,
                spec.f_out,
                spec.f_out,
                false,
                resident,
                &mut self.dram,
                &mut self.counts,
                &self.pool,
            );
            weighting.absorb(&extra);
        }
        // GAT heads attend independently: every head re-runs Weighting
        // with its own W (Veličković et al.; Table III is single-head, so
        // heads = 1 on the paper configs).
        for _ in 1..self.heads() {
            let w = self.engine.weighting_phase(
                self.ds,
                self.cursor,
                spec.f_in,
                spec.f_out,
                spec.sparse_input,
                resident,
                &mut self.dram,
                &mut self.counts,
                &self.pool,
            );
            weighting.absorb(&w);
        }
        let cycles = weighting.total_cycles;
        self.pending_weighting = Some(weighting);
        cycles
    }

    /// Runs the Aggregation phase of the current layer (all GAT heads),
    /// closes the layer's report, and returns the phase cycles.
    ///
    /// # Panics
    ///
    /// Panics if the current layer's Weighting has not run yet.
    pub fn run_aggregation(&mut self) -> u64 {
        let weighting =
            self.pending_weighting.take().expect("run_weighting must precede run_aggregation");
        let spec = self.model.layers[self.cursor];
        let is_gat = self.model.model == GnnModel::Gat;
        let layer_graph = if self.model.model == GnnModel::GraphSage {
            sampled_union_graph(
                &self.agg_graph,
                self.model.sample_size.unwrap_or(25),
                SAGE_ENGINE_SEED ^ ((self.cursor as u64 + 1) << 32),
            )
        } else {
            self.agg_graph.clone()
        };
        let mut aggregation = self.engine.aggregation_phase(
            &layer_graph,
            spec.f_out,
            is_gat,
            &mut self.dram,
            &mut self.counts,
            &self.pool,
        );
        for _ in 1..self.heads() {
            let a = self.engine.aggregation_phase(
                &layer_graph,
                spec.f_out,
                true,
                &mut self.dram,
                &mut self.counts,
                &self.pool,
            );
            aggregation.absorb(&a);
        }
        let cycles = aggregation.total_cycles;
        self.layers.push(LayerReport { layer: self.cursor, weighting, aggregation });
        self.cursor += 1;
        cycles
    }

    /// Runs DiffPool's full irregular schedule (embedding + pooling GCNs,
    /// coarsening matmuls, the dense coarse stack).
    ///
    /// # Panics
    ///
    /// Panics unless the model is DiffPool, or if already run.
    pub fn run_diffpool(&mut self) {
        assert_eq!(self.model.model, GnnModel::DiffPool, "run_diffpool is DiffPool-only");
        assert!(!self.diffpool_done, "DiffPool schedule already ran");
        let engine = self.engine;
        engine.run_diffpool(
            self.model,
            self.ds,
            &self.agg_graph,
            self.opts.weights_resident,
            &mut self.dram,
            &mut self.counts,
            &mut self.layers,
            &mut self.coarsening_cycles,
            &self.pool,
        );
        self.diffpool_done = true;
    }

    /// Drives every remaining phase in serial order.
    pub fn run_to_completion(&mut self) {
        if self.model.model == GnnModel::DiffPool {
            if !self.diffpool_done {
                self.run_diffpool();
            }
            return;
        }
        if self.pending_weighting.is_some() {
            self.run_aggregation();
        }
        while self.cursor < self.model.layers.len() {
            self.run_weighting();
            self.run_aggregation();
        }
    }

    /// Charges the final writeback and static energy and emits the report.
    ///
    /// # Panics
    ///
    /// Panics if phases are still outstanding (see
    /// [`is_complete`](RunSession::is_complete)).
    pub fn finish(mut self) -> InferenceReport {
        assert!(self.is_complete(), "phases still outstanding at finish");
        let v = self.ds.graph.num_vertices();
        let e = self.ds.graph.num_edges();

        // --- Final writeback of the output embeddings.
        let out_rows = if self.model.model == GnnModel::DiffPool {
            self.model.diffpool_clusters.unwrap_or(1) as u64
        } else {
            v as u64
        };
        let writeback_bytes = out_rows * self.model.output_width() as u64 * 4;
        let writeback_cycles = self.dram.write_seq(writeback_bytes);
        self.counts.dram_output_bytes += writeback_bytes;

        let total_cycles = self.preprocessing_cycles
            + self
                .layers
                .iter()
                .map(|l| l.weighting.total_cycles + l.aggregation.total_cycles)
                .sum::<u64>()
            + self.coarsening_cycles
            + writeback_cycles;
        let latency_s = total_cycles as f64 / self.engine.config.clock_hz;

        let mut energy = EnergyLedger::new();
        self.counts.charge(&self.engine.ops, &mut energy);
        energy.add(
            gnnie_mem::Component::Control,
            static_energy_pj(&self.engine.ops, total_cycles, self.engine.config.clock_hz),
        );

        let effective_ops = 2 * self
            .layers
            .iter()
            .map(|l| l.weighting.macs_issued + l.aggregation.macs_issued)
            .sum::<u64>()
            + self.layers.iter().map(|l| l.aggregation.exp_evals).sum::<u64>();
        let weight_load_cycles =
            self.layers.iter().map(|l| l.weighting.weight_dram_cycles).sum();

        let dram_counters: DramCounters = *self.dram.counters();
        let report = InferenceReport {
            model: self.model.model,
            dataset: self.ds.spec.dataset,
            scale: self.ds.spec.vertices as f64 / self.ds.spec.dataset.spec().vertices as f64,
            vertices: v as u64,
            edges: e as u64,
            preprocessing_cycles: self.preprocessing_cycles,
            layers: self.layers,
            coarsening_cycles: self.coarsening_cycles,
            writeback_cycles,
            total_cycles,
            latency_s,
            energy,
            dram: dram_counters,
            effective_ops,
            weight_load_cycles,
            weights_resident: self.opts.weights_resident,
        };
        report.record_obs(&self.opts.obs);
        report
    }

    /// Independent attention heads per layer (1 for non-GAT models).
    fn heads(&self) -> usize {
        if self.model.model == GnnModel::Gat {
            self.model.gat_heads.max(1)
        } else {
            1
        }
    }
}

/// Builds the undirected union of sampled neighborhoods: edge `(u, v)` is
/// present if `u` sampled `v` or `v` sampled `u`. This is the edge
/// workload GraphSAGE aggregation executes on the array.
pub fn sampled_union_graph(g: &CsrGraph, k: usize, seed: u64) -> CsrGraph {
    let mut edges = EdgeList::new(g.num_vertices());
    for u in 0..g.num_vertices() {
        for vtx in gnnie_gnn::layers::sample_neighbors(g, u, k, seed) {
            edges.push(u as u32, vtx);
        }
    }
    edges.dedup();
    CsrGraph::from_edge_list(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use gnnie_graph::Dataset;

    fn small(dataset: Dataset, scale: f64) -> GraphDataset {
        GraphDataset::generate(dataset, scale, 42)
    }

    fn run(model: GnnModel, ds: &GraphDataset) -> InferenceReport {
        let cfg = AcceleratorConfig::paper(ds.spec.dataset);
        let mc = ModelConfig::paper(model, &ds.spec);
        Engine::new(cfg).run(&mc, ds)
    }

    #[test]
    fn gcn_report_is_internally_consistent() {
        let ds = small(Dataset::Cora, 0.2);
        let r = run(GnnModel::Gcn, &ds);
        assert_eq!(r.layers.len(), 2);
        assert!(r.total_cycles > 0);
        assert!(
            r.total_cycles
                >= r.preprocessing_cycles + r.weighting_cycles() + r.aggregation_cycles()
        );
        assert!(r.latency_s > 0.0);
        assert!(r.energy.total_pj() > 0.0);
        assert!(r.energy.dram_pj() > 0.0, "DRAM traffic must be charged");
        assert!(r.effective_tops() > 0.0);
        assert!(r.inferences_per_kj() > 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_observed_matches_run_with() {
        let ds = small(Dataset::Cora, 0.1);
        let cfg = AcceleratorConfig::paper(ds.spec.dataset);
        let mc = ModelConfig::paper(GnnModel::Gcn, &ds.spec);
        let engine = Engine::new(cfg);
        let obs = Obs::default();
        let old = engine.run_observed(&mc, &ds, &obs);
        let new =
            engine.run_with(&mc, &ds, RunOptions { obs: obs.clone(), ..RunOptions::default() });
        assert_eq!(format!("{old:?}"), format!("{new:?}"));
    }

    #[test]
    fn gat_costs_more_than_gcn() {
        let ds = small(Dataset::Cora, 0.2);
        let gcn = run(GnnModel::Gcn, &ds);
        let gat = run(GnnModel::Gat, &ds);
        assert!(gat.total_cycles > gcn.total_cycles);
        assert!(gat.energy.total_pj() > gcn.energy.total_pj());
    }

    #[test]
    fn all_models_run_on_all_small_datasets() {
        for dataset in [Dataset::Cora, Dataset::Citeseer] {
            let ds = small(dataset, 0.1);
            for model in GnnModel::ALL {
                let r = run(model, &ds);
                assert!(r.total_cycles > 0, "{model} on {dataset:?}");
                assert!(r.energy.total_pj() > 0.0, "{model} on {dataset:?}");
            }
        }
    }

    #[test]
    fn diffpool_has_coarsening_phase() {
        let ds = small(Dataset::Cora, 0.1);
        let r = run(GnnModel::DiffPool, &ds);
        assert!(r.coarsening_cycles > 0);
        // embed + pool + 1 coarse layer.
        assert_eq!(r.layers.len(), 3);
    }

    #[test]
    fn sage_runs_on_sampled_graph() {
        let ds = small(Dataset::Pubmed, 0.05);
        let r = run(GnnModel::GraphSage, &ds);
        // Sampled aggregation must touch no more than the full edge set.
        let agg_updates: u64 = r.layers.iter().map(|l| l.aggregation.edge_updates).sum();
        assert!(agg_updates <= 2 * 2 * ds.graph.num_edges() as u64);
        assert!(agg_updates > 0);
    }

    #[test]
    fn sampled_union_graph_caps_degree_growth() {
        let g = gnnie_graph::generate::powerlaw_chung_lu(200, 2000, 2.0, 3);
        let s = sampled_union_graph(&g, 5, 7);
        assert_eq!(s.num_vertices(), 200);
        assert!(s.num_edges() <= g.num_edges());
        // Every sampled edge must exist in the original graph.
        for (u, vtx) in s.edges() {
            assert!(g.has_edge(u as usize, vtx as usize));
        }
    }

    #[test]
    fn multihead_gat_scales_attention_work() {
        let ds = small(Dataset::Cora, 0.15);
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        let one = Engine::new(cfg.clone()).run(&ModelConfig::gat_multihead(&ds.spec, 1), &ds);
        let four = Engine::new(cfg).run(&ModelConfig::gat_multihead(&ds.spec, 4), &ds);
        // Heads attend independently: exp evaluations scale exactly, total
        // time grows but stays sublinear in K only if phases overlapped —
        // our serial-head model is at least 2x for 4 heads.
        let exp1: u64 = one.layers.iter().map(|l| l.aggregation.exp_evals).sum();
        let exp4: u64 = four.layers.iter().map(|l| l.aggregation.exp_evals).sum();
        assert_eq!(exp4, 4 * exp1, "each head re-runs the softmax pipeline");
        assert!(four.total_cycles > 2 * one.total_cycles);
        assert!(four.energy.total_pj() > 2.0 * one.energy.total_pj());
    }

    #[test]
    fn single_head_multihead_config_matches_paper_gat() {
        let ds = small(Dataset::Citeseer, 0.15);
        let cfg = AcceleratorConfig::paper(Dataset::Citeseer);
        let paper =
            Engine::new(cfg.clone()).run(&ModelConfig::paper(GnnModel::Gat, &ds.spec), &ds);
        let multi = Engine::new(cfg).run(&ModelConfig::gat_multihead(&ds.spec, 1), &ds);
        assert_eq!(paper.total_cycles, multi.total_cycles);
    }

    #[test]
    fn full_design_beats_ablation_baseline() {
        let ds = small(Dataset::Cora, 0.2);
        let mc = ModelConfig::paper(GnnModel::Gcn, &ds.spec);
        let full = Engine::new(AcceleratorConfig::paper(Dataset::Cora)).run(&mc, &ds);
        let base = Engine::new(AcceleratorConfig::ablation_baseline(256 * 1024)).run(&mc, &ds);
        assert!(
            full.total_cycles < base.total_cycles,
            "all optimizations on ({}) must beat baseline ({})",
            full.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn cache_policy_selection_threads_through_the_engine() {
        use gnnie_mem::CachePolicyKind;
        let ds = small(Dataset::Cora, 0.2);
        let mc = ModelConfig::paper(GnnModel::Gcn, &ds.spec);
        let mut cycles_by_kind = Vec::new();
        for kind in CachePolicyKind::ALL {
            let mut cfg = AcceleratorConfig::paper(Dataset::Cora);
            cfg.cache_policy = kind;
            let r = Engine::new(cfg).run(&mc, &ds);
            for layer in &r.layers {
                let cache = layer.aggregation.cache.as_ref().expect("cache policy enabled");
                assert!(cache.completed, "{kind}");
                assert_eq!(cache.policy, kind.name());
            }
            if kind == CachePolicyKind::Paper {
                assert_eq!(r.dram.random_bytes(), 0, "paper policy keeps DRAM sequential");
            }
            cycles_by_kind.push(r.total_cycles);
        }
        assert!(cycles_by_kind.iter().all(|&c| c > 0));
    }

    #[test]
    fn phased_session_reproduces_the_serial_run_exactly() {
        // The serving path drives phases one at a time; the report must be
        // indistinguishable from the one-shot Engine::run.
        for model in GnnModel::ALL {
            let ds = small(Dataset::Cora, 0.15);
            let cfg = AcceleratorConfig::paper(Dataset::Cora);
            let mc = ModelConfig::paper(model, &ds.spec);
            let engine = Engine::new(cfg);
            let serial = engine.run(&mc, &ds);

            let mut session = engine.begin(&mc, &ds);
            if model == GnnModel::DiffPool {
                session.run_diffpool();
            } else {
                for _ in 0..mc.layers.len() {
                    assert!(!session.is_complete());
                    let w = session.run_weighting();
                    let a = session.run_aggregation();
                    assert!(w > 0 && a > 0, "{model}");
                }
            }
            assert!(session.is_complete());
            let phased = session.finish();
            assert_eq!(serial.total_cycles, phased.total_cycles, "{model}");
            assert_eq!(serial.energy, phased.energy, "{model}");
            assert_eq!(serial.dram, phased.dram, "{model}");
            assert_eq!(serial.weight_load_cycles, phased.weight_load_cycles, "{model}");
            assert!(serial.weight_load_cycles > 0, "{model} must pay weight loads");
        }
    }

    #[test]
    fn resident_weights_cut_total_cycles_and_report_zero_weight_loads() {
        for model in GnnModel::ALL {
            let ds = small(Dataset::Cora, 0.15);
            let cfg = AcceleratorConfig::paper(Dataset::Cora);
            let mc = ModelConfig::paper(model, &ds.spec);
            let engine = Engine::new(cfg);
            let cold = engine.run(&mc, &ds);
            let mut session = engine.begin_with(
                &mc,
                &ds,
                RunOptions { weights_resident: true, ..RunOptions::default() },
            );
            session.run_to_completion();
            let hot = session.finish();
            assert!(hot.weights_resident);
            assert_eq!(hot.weight_load_cycles, 0, "{model}");
            assert!(hot.total_cycles <= cold.total_cycles, "{model}");
            assert!(
                hot.dram.total_bytes() < cold.dram.total_bytes(),
                "{model}: resident weights must remove DRAM traffic"
            );
        }
    }

    #[test]
    fn reports_are_bit_identical_across_sim_threads() {
        // The tentpole invariant: sharded merge in shard order keeps the
        // full report byte-identical to the serial path, via both the
        // config knob and the per-run RunOptions override.
        let ds = small(Dataset::Cora, 0.15);
        for model in [GnnModel::Gcn, GnnModel::Gat] {
            let mc = ModelConfig::paper(model, &ds.spec);
            let mut cfg = AcceleratorConfig::paper(Dataset::Cora);
            cfg.sim_threads = SimThreads::Fixed(1);
            let serial = format!("{:?}", Engine::new(cfg.clone()).run(&mc, &ds));
            for threads in [2usize, 4, 8] {
                cfg.sim_threads = SimThreads::Fixed(threads);
                let via_config = format!("{:?}", Engine::new(cfg.clone()).run(&mc, &ds));
                assert_eq!(via_config, serial, "{model} via config @ {threads}");
                let mut base = AcceleratorConfig::paper(Dataset::Cora);
                base.sim_threads = SimThreads::Fixed(1);
                let engine = Engine::new(base);
                let mut session = engine.begin_with(
                    &mc,
                    &ds,
                    RunOptions {
                        weights_resident: false,
                        sim_threads: Some(SimThreads::Fixed(threads)),
                        ..RunOptions::default()
                    },
                );
                session.run_to_completion();
                let via_opts = format!("{:?}", session.finish());
                assert_eq!(via_opts, serial, "{model} via RunOptions @ {threads}");
            }
        }
    }

    #[test]
    fn shared_persistent_pool_reproduces_the_scoped_reports_exactly() {
        // The daemon's amortization hook: one persistent pool shared
        // across consecutive sessions must change nothing in the reports.
        let ds = small(Dataset::Cora, 0.15);
        let engine = Engine::new(AcceleratorConfig::paper(Dataset::Cora));
        let pool = SimPool::persistent(SimThreads::Fixed(4));
        for model in [GnnModel::Gcn, GnnModel::Gat] {
            let mc = ModelConfig::paper(model, &ds.spec);
            for resident in [false, true] {
                let opts = RunOptions { weights_resident: resident, ..RunOptions::default() };
                let mut scoped = engine.begin_with(
                    &mc,
                    &ds,
                    RunOptions { sim_threads: Some(SimThreads::Fixed(1)), ..opts.clone() },
                );
                scoped.run_to_completion();
                let scoped = format!("{:?}", scoped.finish());
                // Reuse the same pool for both residency variants and
                // both models — the daemon does exactly this.
                let mut pooled = engine.begin_pooled(&mc, &ds, opts, &pool);
                pooled.run_to_completion();
                let pooled = format!("{:?}", pooled.finish());
                assert_eq!(pooled, scoped, "{model} resident={resident}");
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let ds = small(Dataset::Citeseer, 0.2);
        let a = run(GnnModel::Gat, &ds);
        let b = run(GnnModel::Gat, &ds);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn design_e_close_to_design_d_with_fewer_macs() {
        // The headline of Fig. 17: FM (Design E, 1216 MACs) achieves
        // comparable weighting cycles to uniform designs with more MACs.
        let ds = small(Dataset::Cora, 0.3);
        let mc = ModelConfig::paper(GnnModel::Gcn, &ds.spec);
        let e =
            Engine::new(AcceleratorConfig::with_design(Design::E, 256 * 1024)).run(&mc, &ds);
        let b =
            Engine::new(AcceleratorConfig::with_design(Design::B, 256 * 1024)).run(&mc, &ds);
        let we = e.weighting_cycles() as f64;
        let wb = b.weighting_cycles() as f64;
        assert!(
            we <= wb * 1.15,
            "Design E weighting ({we}) should be within 15% of Design B ({wb})"
        );
    }
}
