//! Functional datapath verification.
//!
//! The cycle model in [`crate::engine`] claims the machine computes each
//! GNN correctly while the cache walks dynamic subgraphs and the
//! schedulers shuffle blocks between CPE rows. This module *performs the
//! actual arithmetic in hardware order* — k-block partial products
//! accumulated through MPE psums, edge aggregation in the exact order the
//! degree-aware cache processes edges, GAT softmax through the exp LUT —
//! and compares against the golden models of `gnnie-gnn`.
//!
//! A cache-policy bug that dropped or double-processed an edge, or a
//! scheduler bug that lost a block, shows up here as a numeric mismatch.

use gnnie_gnn::layers::{GatLayer, GnnLayer, SageAggregator};
use gnnie_graph::reorder::Permutation;
use gnnie_graph::CsrGraph;
use gnnie_mem::{CacheConfig, DegreeAwareCache, HbmModel};
use gnnie_tensor::activations::{leaky_relu, relu, GAT_LEAKY_SLOPE};
use gnnie_tensor::{CsrMatrix, DenseMatrix, ExpLut};

/// How the functional datapath evaluates `exp` in the GAT softmax.
#[derive(Debug, Clone)]
pub enum ExpMode {
    /// Library `exp` (tight tolerances; the default for correctness tests).
    Exact,
    /// The hardware's lookup-table unit (paper §III, citing Nilsson et
    /// al.); expect LUT-level relative error.
    Lut(ExpLut),
}

impl ExpMode {
    fn eval(&self, x: f32) -> f32 {
        match self {
            ExpMode::Exact => x.exp(),
            ExpMode::Lut(lut) => lut.exp(x),
        }
    }
}

/// Weighting on the datapath: per-vertex k-block partial products, each
/// block's contribution accumulated separately (the MPE psum path,
/// §IV-A/B). Accepts sparse input features.
pub fn functional_weighting_sparse(
    features: &CsrMatrix,
    weight: &DenseMatrix,
    array_rows: usize,
) -> DenseMatrix {
    let v = features.rows();
    let f_in = features.cols();
    let f_out = weight.cols();
    let k = f_in.div_ceil(array_rows.max(1)).max(1);
    let mut out = DenseMatrix::zeros(v, f_out);
    let mut psum = vec![0.0f32; f_out];
    for r in 0..v {
        for b in 0..array_rows {
            let lo = b * k;
            if lo >= f_in {
                break;
            }
            let hi = ((b + 1) * k).min(f_in);
            // The CPE computes the block-local partial...
            psum.iter_mut().for_each(|p| *p = 0.0);
            let mut nonzero = false;
            for (c, x) in features.row_iter(r) {
                if c < lo || c >= hi {
                    continue;
                }
                nonzero = true;
                let wrow = weight.row(c);
                for (p, &w) in psum.iter_mut().zip(wrow) {
                    *p += x * w;
                }
            }
            // ...and the MPE accumulates it into the vertex psum
            // (zero blocks are skipped, contributing nothing).
            if nonzero {
                out.axpy_row(r, 1.0, &psum);
            }
        }
    }
    out
}

/// Dense-feature variant of [`functional_weighting_sparse`].
pub fn functional_weighting_dense(
    h: &DenseMatrix,
    weight: &DenseMatrix,
    array_rows: usize,
) -> DenseMatrix {
    functional_weighting_sparse(&CsrMatrix::from_dense(h), weight, array_rows)
}

/// Runs edge aggregation through the degree-aware cache, invoking
/// `on_edge` for every undirected edge in hardware processing order.
/// `capacity` vertices fit in the input buffer. Panics if the cache walk
/// fails to process every edge (that *is* the verification).
fn cache_edge_walk(
    graph: &CsrGraph,
    capacity: usize,
    gamma: u32,
    mut on_edge: impl FnMut(u32, u32),
) {
    let mut cfg = CacheConfig::with_capacity(capacity.max(4), 64);
    cfg.gamma = gamma;
    let mut dram = HbmModel::hbm2_256gbps(1.3e9);
    let result = DegreeAwareCache::new(graph, cfg).run_with(&mut dram, &mut on_edge);
    assert!(
        result.completed,
        "cache walk must process every edge exactly once (processed {} of {})",
        result.edges_processed,
        graph.num_edges()
    );
}

/// GCN aggregation in cache order: `out_i = Σ_{j∈{i}∪N(i)} hw_j/√(d̃_i d̃_j)`.
pub fn functional_aggregate_gcn(
    graph: &CsrGraph,
    hw: &DenseMatrix,
    capacity: usize,
    gamma: u32,
) -> DenseMatrix {
    let n = graph.num_vertices();
    let inv: Vec<f32> = (0..n).map(|u| 1.0 / ((graph.degree(u) as f32 + 1.0).sqrt())).collect();
    let mut out = DenseMatrix::zeros(n, hw.cols());
    for (i, &inv_i) in inv.iter().enumerate() {
        out.axpy_row(i, inv_i * inv_i, hw.row(i));
    }
    cache_edge_walk(graph, capacity, gamma, |u, vx| {
        let (u, vx) = (u as usize, vx as usize);
        let w = inv[u] * inv[vx];
        let vrow = hw.row(vx).to_vec();
        out.axpy_row(u, w, &vrow);
        let urow = hw.row(u).to_vec();
        out.axpy_row(vx, w, &urow);
    });
    out
}

/// GIN aggregation in cache order: `(1+ε)·hw_i + Σ_{j∈N(i)} hw_j`.
pub fn functional_aggregate_gin(
    graph: &CsrGraph,
    hw: &DenseMatrix,
    epsilon: f32,
    capacity: usize,
    gamma: u32,
) -> DenseMatrix {
    let n = graph.num_vertices();
    let mut out = DenseMatrix::zeros(n, hw.cols());
    for i in 0..n {
        out.axpy_row(i, 1.0 + epsilon, hw.row(i));
    }
    cache_edge_walk(graph, capacity, gamma, |u, vx| {
        let (u, vx) = (u as usize, vx as usize);
        let vrow = hw.row(vx).to_vec();
        out.axpy_row(u, 1.0, &vrow);
        let urow = hw.row(u).to_vec();
        out.axpy_row(vx, 1.0, &urow);
    });
    out
}

/// GAT attention + weighted aggregation in cache order, with softmax
/// numerators/denominators accumulated per edge exactly as Fig. 7's
/// dataflow does (including the self edge, then a final divide).
pub fn functional_aggregate_gat(
    graph: &CsrGraph,
    hw: &DenseMatrix,
    layer: &GatLayer,
    exp_mode: &ExpMode,
    capacity: usize,
    gamma: u32,
) -> DenseMatrix {
    let n = graph.num_vertices();
    let f = hw.cols();
    let (e1, e2) = layer.attention_partials(hw);
    let mut num = DenseMatrix::zeros(n, f);
    let mut den = vec![0.0f32; n];
    // Self edges are processed at vertex arrival.
    for i in 0..n {
        let s = exp_mode.eval(leaky_relu(e1[i] + e2[i], GAT_LEAKY_SLOPE));
        num.axpy_row(i, s, hw.row(i));
        den[i] += s;
    }
    cache_edge_walk(graph, capacity, gamma, |u, vx| {
        let (u, vx) = (u as usize, vx as usize);
        // Edge (u ← v): numerator exp(e_{u,1}+e_{v,2})·hw_v.
        let suv = exp_mode.eval(leaky_relu(e1[u] + e2[vx], GAT_LEAKY_SLOPE));
        let vrow = hw.row(vx).to_vec();
        num.axpy_row(u, suv, &vrow);
        den[u] += suv;
        // And the reverse direction (v ← u).
        let svu = exp_mode.eval(leaky_relu(e1[vx] + e2[u], GAT_LEAKY_SLOPE));
        let urow = hw.row(u).to_vec();
        num.axpy_row(vx, svu, &urow);
        den[vx] += svu;
    });
    // Final SFU divide.
    for (i, &d) in den.iter().enumerate() {
        for x in num.row_mut(i) {
            *x /= d;
        }
    }
    num
}

/// GraphSAGE max aggregation over sampled directed neighborhoods, walked
/// through the cache on the sampled-union graph. `sampled(u)` must return
/// `u`'s sampled neighbor list (the golden layer's own sampling).
pub fn functional_aggregate_sage_max(
    union_graph: &CsrGraph,
    hw: &DenseMatrix,
    sampled_pairs: &std::collections::HashSet<(u32, u32)>,
    capacity: usize,
    gamma: u32,
) -> DenseMatrix {
    let n = union_graph.num_vertices();
    let f = hw.cols();
    let mut out = DenseMatrix::zeros(n, f);
    for i in 0..n {
        let row = hw.row(i).to_vec();
        out.row_mut(i).copy_from_slice(&row);
    }
    cache_edge_walk(union_graph, capacity, gamma, |u, vx| {
        // Directional: u pulls from v only if u sampled v.
        if sampled_pairs.contains(&(u, vx)) {
            let vrow = hw.row(vx as usize).to_vec();
            for (o, &x) in out.row_mut(u as usize).iter_mut().zip(&vrow) {
                if x > *o {
                    *o = x;
                }
            }
        }
        if sampled_pairs.contains(&(vx, u)) {
            let urow = hw.row(u as usize).to_vec();
            for (o, &x) in out.row_mut(vx as usize).iter_mut().zip(&urow) {
                if x > *o {
                    *o = x;
                }
            }
        }
    });
    out
}

/// Runs one layer through the functional datapath. The graph is relabeled
/// into descending-degree order (mirroring the engine's preprocessing) and
/// the output is mapped back to original vertex ids.
pub fn functional_layer(
    layer: &GnnLayer,
    graph: &CsrGraph,
    h: &DenseMatrix,
    array_rows: usize,
    capacity: usize,
    gamma: u32,
    exp_mode: &ExpMode,
) -> DenseMatrix {
    let perm = Permutation::descending_degree(graph);
    let g2 = perm.apply(graph);
    let n = graph.num_vertices();
    // Features in new-id order.
    let h2 = DenseMatrix::from_fn(n, h.cols(), |r, c| h.get(perm.old_of(r) as usize, c));

    let out2 = match layer {
        GnnLayer::Gcn(l) => {
            let hw = functional_weighting_dense(&h2, l.weight(), array_rows);
            functional_aggregate_gcn(&g2, &hw, capacity, gamma)
        }
        GnnLayer::Gat(l) => {
            let hw = functional_weighting_dense(&h2, l.weight(), array_rows);
            functional_aggregate_gat(&g2, &hw, l, exp_mode, capacity, gamma)
        }
        GnnLayer::Gin(l) => {
            let mlp = l.mlp();
            let hw1 = functional_weighting_dense(&h2, &mlp.w1, array_rows);
            let mut agg = functional_aggregate_gin(&g2, &hw1, l.epsilon(), capacity, gamma);
            for r in 0..agg.rows() {
                for (x, &b) in agg.row_mut(r).iter_mut().zip(&mlp.b1) {
                    *x = relu(*x + b);
                }
            }
            let mut out = functional_weighting_dense(&agg, &mlp.w2, array_rows);
            for r in 0..out.rows() {
                for (x, &b) in out.row_mut(r).iter_mut().zip(&mlp.b2) {
                    *x += b;
                }
            }
            out
        }
        GnnLayer::Sage(l) => {
            assert_eq!(
                l.aggregator(),
                SageAggregator::Max,
                "functional path implements the Table III max aggregator"
            );
            let hw = functional_weighting_dense(&h2, l.weight(), array_rows);
            // Sample on the *original* graph (golden sampling), then map
            // pairs into new-id space.
            let mut pairs = std::collections::HashSet::new();
            let mut union = gnnie_graph::EdgeList::new(n);
            for u in 0..n {
                for vtx in l.sampled_neighbors(graph, u) {
                    let nu = perm.new_of(u);
                    let nv = perm.new_of(vtx as usize);
                    pairs.insert((nu, nv));
                    union.push(nu, nv);
                }
            }
            union.dedup();
            let union_graph = CsrGraph::from_edge_list(union);
            functional_aggregate_sage_max(&union_graph, &hw, &pairs, capacity, gamma)
        }
    };
    // Map back to original ids.
    DenseMatrix::from_fn(n, out2.cols(), |r, c| out2.get(perm.new_of(r) as usize, c))
}

/// Outcome of a full-model functional verification.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Per-layer max |functional − golden| relative to the layer's max
    /// absolute golden value.
    pub per_layer_rel_err: Vec<f32>,
    /// The worst layer error.
    pub max_rel_err: f32,
}

impl VerifyOutcome {
    /// Whether every layer matched within `tol`.
    pub fn passed(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Verifies a full layer stack: runs both the golden model and the
/// functional datapath layer by layer (ReLU between layers) and records
/// relative errors. Uses a deliberately small cache (`|V|/3` vertices) so
/// eviction/refetch paths are exercised.
pub fn verify_layers(
    layers: &[GnnLayer],
    graph: &CsrGraph,
    h0: &DenseMatrix,
    array_rows: usize,
    gamma: u32,
    exp_mode: &ExpMode,
) -> VerifyOutcome {
    let capacity = (graph.num_vertices() / 3).max(4);
    let mut golden = h0.clone();
    let mut functional = h0.clone();
    let mut per_layer_rel_err = Vec::with_capacity(layers.len());
    for (i, layer) in layers.iter().enumerate() {
        golden = layer.forward(graph, &golden);
        functional =
            functional_layer(layer, graph, &functional, array_rows, capacity, gamma, exp_mode);
        let scale = golden.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs())).max(1e-12);
        per_layer_rel_err.push(golden.max_abs_diff(&functional) / scale);
        if i + 1 < layers.len() {
            golden.map_inplace(relu);
            functional.map_inplace(relu);
        }
    }
    let max_rel_err = per_layer_rel_err.iter().copied().fold(0.0f32, f32::max);
    VerifyOutcome { per_layer_rel_err, max_rel_err }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnie_gnn::layers::{aggregate_gcn, GcnLayer, GinLayer, Mlp, SageLayer};
    use gnnie_gnn::model::{GnnModel, ModelConfig};
    use gnnie_gnn::params::ModelParams;
    use gnnie_graph::generate;

    fn features(n: usize, f: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, f, |r, c| (((r * 13 + c * 7) % 11) as f32 - 5.0) * 0.21)
    }

    #[test]
    fn functional_weighting_matches_matmul() {
        let h = features(30, 50);
        let w = DenseMatrix::from_fn(50, 16, |r, c| (((r + c) % 7) as f32 - 3.0) * 0.1);
        let exact = h.matmul(&w).unwrap();
        let fun = functional_weighting_dense(&h, &w, 16);
        let scale = exact.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(exact.max_abs_diff(&fun) / scale < 1e-5);
    }

    #[test]
    fn functional_weighting_sparse_matches_dense_path() {
        let h = {
            let mut m = features(20, 64);
            // Sparsify: zero 80% of entries.
            m.map_inplace(|x| if (x * 100.0) as i32 % 5 != 0 { 0.0 } else { x });
            m
        };
        let w = DenseMatrix::from_fn(64, 8, |r, c| ((r * 3 + c) % 5) as f32 * 0.2 - 0.4);
        let sparse = CsrMatrix::from_dense(&h);
        let a = functional_weighting_sparse(&sparse, &w, 16);
        let b = h.matmul(&w).unwrap();
        let scale = b.as_slice().iter().fold(1e-12f32, |m, &x| m.max(x.abs()));
        assert!(a.max_abs_diff(&b) / scale < 1e-5);
    }

    #[test]
    fn cache_order_gcn_aggregation_matches_golden() {
        let g = generate::powerlaw_chung_lu(120, 600, 2.0, 5);
        let perm = Permutation::descending_degree(&g);
        let g2 = perm.apply(&g);
        let hw = features(120, 24);
        let fun = functional_aggregate_gcn(&g2, &hw, 20, 5);
        let gold = aggregate_gcn(&g2, &hw);
        let scale = gold.as_slice().iter().fold(1e-12f32, |m, &x| m.max(x.abs()));
        assert!(
            gold.max_abs_diff(&fun) / scale < 1e-4,
            "cache-order aggregation must equal golden"
        );
    }

    #[test]
    fn tiny_cache_still_aggregates_correctly() {
        // Stresses eviction, refetch, and psum spill paths.
        let g = generate::powerlaw_chung_lu(200, 1400, 1.9, 11);
        let perm = Permutation::descending_degree(&g);
        let g2 = perm.apply(&g);
        let hw = features(200, 8);
        let fun = functional_aggregate_gcn(&g2, &hw, 8, 5);
        let gold = aggregate_gcn(&g2, &hw);
        let scale = gold.as_slice().iter().fold(1e-12f32, |m, &x| m.max(x.abs()));
        assert!(gold.max_abs_diff(&fun) / scale < 1e-4);
    }

    #[test]
    fn gcn_layer_verifies_end_to_end() {
        let g = generate::erdos_renyi(60, 240, 9);
        let h0 = features(60, 32);
        let params = ModelParams::init(ModelConfig::custom(GnnModel::Gcn, &[32, 16, 4]), 3);
        let outcome = verify_layers(&params.layers, &g, &h0, 16, 5, &ExpMode::Exact);
        assert!(outcome.passed(1e-4), "errors: {:?}", outcome.per_layer_rel_err);
    }

    #[test]
    fn gat_layer_verifies_with_exact_exp() {
        let g = generate::powerlaw_chung_lu(80, 400, 2.1, 13);
        let h0 = features(80, 24);
        let params = ModelParams::init(ModelConfig::custom(GnnModel::Gat, &[24, 12, 4]), 5);
        let outcome = verify_layers(&params.layers, &g, &h0, 16, 5, &ExpMode::Exact);
        assert!(outcome.passed(2e-4), "errors: {:?}", outcome.per_layer_rel_err);
    }

    #[test]
    fn gat_layer_verifies_with_lut_exp_at_loose_tolerance() {
        let g = generate::erdos_renyi(50, 200, 17);
        let h0 = features(50, 16);
        let params = ModelParams::init(ModelConfig::custom(GnnModel::Gat, &[16, 8]), 7);
        let outcome =
            verify_layers(&params.layers, &g, &h0, 16, 5, &ExpMode::Lut(ExpLut::default()));
        // LUT exp is approximate; softmax normalization cancels much of
        // the error but not all of it.
        assert!(outcome.passed(0.05), "errors: {:?}", outcome.per_layer_rel_err);
    }

    #[test]
    fn gin_layer_verifies() {
        let g = generate::erdos_renyi(70, 280, 21);
        let h0 = features(70, 20);
        let mlp = Mlp::new(
            DenseMatrix::from_fn(20, 12, |r, c| ((r + 2 * c) % 5) as f32 * 0.2 - 0.4),
            vec![0.05; 12],
            DenseMatrix::from_fn(12, 6, |r, c| ((2 * r + c) % 3) as f32 * 0.3 - 0.3),
            vec![-0.02; 6],
        );
        let layers = vec![GnnLayer::Gin(GinLayer::new(0.3, mlp))];
        let outcome = verify_layers(&layers, &g, &h0, 16, 5, &ExpMode::Exact);
        assert!(outcome.passed(1e-4), "errors: {:?}", outcome.per_layer_rel_err);
    }

    #[test]
    fn sage_layer_verifies_with_sampling() {
        let g = generate::powerlaw_chung_lu(90, 700, 2.0, 23);
        let h0 = features(90, 16);
        let layers = vec![GnnLayer::Sage(SageLayer::new(
            DenseMatrix::from_fn(16, 8, |r, c| ((r * c + 1) % 7) as f32 * 0.1 - 0.3),
            SageAggregator::Max,
            5,
            99,
        ))];
        let outcome = verify_layers(&layers, &g, &h0, 16, 5, &ExpMode::Exact);
        assert!(outcome.passed(1e-4), "errors: {:?}", outcome.per_layer_rel_err);
    }

    #[test]
    fn verify_detects_a_corrupted_datapath() {
        // Sanity check that the harness can actually fail: perturb the
        // golden weight after building the functional layer.
        let g = generate::erdos_renyi(40, 160, 2);
        let h0 = features(40, 10);
        let w_good = DenseMatrix::from_fn(10, 5, |r, c| ((r + c) % 3) as f32 * 0.5 - 0.5);
        let mut w_bad = w_good.clone();
        w_bad.set(0, 0, w_bad.get(0, 0) + 1.0);
        let golden = GcnLayer::new(w_good).forward(&g, &h0);
        let perm = Permutation::descending_degree(&g);
        let g2 = perm.apply(&g);
        let h2 = DenseMatrix::from_fn(40, 10, |r, c| h0.get(perm.old_of(r) as usize, c));
        let hw = functional_weighting_dense(&h2, &w_bad, 16);
        let out2 = functional_aggregate_gcn(&g2, &hw, 8, 5);
        let out = DenseMatrix::from_fn(40, 5, |r, c| out2.get(perm.new_of(r) as usize, c));
        assert!(golden.max_abs_diff(&out) > 1e-3, "corruption must be detected");
    }
}
