//! The Merge-PE psum pressure model (paper §IV-B).
//!
//! Each CPE column feeds one MPE that accumulates partial sums across the
//! column's k-blocks, tagged by vertex. Because rows run at different
//! speeds ("rabbits" and "turtles"), an MPE must hold psums for every
//! vertex whose blocks have started but not all finished. The psum spad
//! has a fixed number of slots; when the rabbit/turtle spread exceeds it,
//! the fast rows stall until the slow rows drain slots.

use crate::cpe::div_ceil;

/// Estimated stall cycles per pass from psum-slot exhaustion.
///
/// Model: the fastest row leads the slowest by `max − min` cycles at the
/// end of a pass. Each in-flight vertex occupies one slot; the slowest row
/// retires a vertex every `max/V` cycles, so the lead corresponds to
/// `lead · V / max` outstanding vertices. Any excess beyond the slot count
/// must be absorbed by stalling the fast rows for the retire time of the
/// excess vertices.
pub fn psum_stall_cycles(per_row_cycles: &[u64], vertices: u64, psum_slots: u64) -> u64 {
    if vertices == 0 || per_row_cycles.is_empty() {
        return 0;
    }
    let max = per_row_cycles.iter().copied().max().unwrap_or(0);
    let min = per_row_cycles.iter().copied().min().unwrap_or(0);
    if max == 0 {
        return 0;
    }
    let lead = max - min;
    // Outstanding vertices implied by the lead.
    let in_flight = div_ceil(lead * vertices, max);
    if in_flight <= psum_slots {
        return 0;
    }
    let excess = in_flight - psum_slots;
    // Retiring one vertex takes max/V cycles on the bottleneck row.
    div_ceil(excess * max, vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_rows_never_stall() {
        assert_eq!(psum_stall_cycles(&[100, 100, 100], 50, 4), 0);
    }

    #[test]
    fn small_spread_fits_in_slots() {
        // lead 10 of 100 cycles over 50 vertices → 5 in flight ≤ 8 slots.
        assert_eq!(psum_stall_cycles(&[100, 95, 90], 50, 8), 0);
    }

    #[test]
    fn large_spread_stalls() {
        // lead 80 of 100 over 100 vertices → 80 in flight; 16 slots → 64
        // excess × 1 cycle each.
        let stalls = psum_stall_cycles(&[100, 20], 100, 16);
        assert_eq!(stalls, 64);
    }

    #[test]
    fn more_slots_reduce_stalls() {
        let few = psum_stall_cycles(&[1000, 100], 500, 8);
        let many = psum_stall_cycles(&[1000, 100], 500, 128);
        assert!(few > many);
    }

    #[test]
    fn zero_vertices_or_rows_are_free() {
        assert_eq!(psum_stall_cycles(&[], 10, 4), 0);
        assert_eq!(psum_stall_cycles(&[5, 5], 0, 4), 0);
        assert_eq!(psum_stall_cycles(&[0, 0], 10, 4), 0);
    }
}
