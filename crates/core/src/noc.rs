//! Inter-PE interconnect model: the communication side of load balancing.
//!
//! The paper's §VII argues that GNNIE's load balancing is cheap on the
//! wire where competing schemes are expensive:
//!
//! * **GNNIE LR** makes one static offload decision per pass, *after* FM,
//!   between paired CPE rows — the only traffic is the weights travelling
//!   with the offloaded blocks over the row-broadcast bus ("It results in
//!   low inter-PE communication, low control overhead").
//! * **AWB-GCN** performs "multiple rounds of runtime load-rebalancing,
//!   but this leads to high inter-PE communication" through a multistage
//!   network: every round re-routes work units (and their operands)
//!   across `⌈log₂ P⌉` switch stages and broadcasts fresh routing state.
//! * **EnGN** uses a ring-edge-reduce (RER) dataflow where "each PE
//!   broadcasts its data to other PEs in the same column": every partial
//!   circulates the column ring regardless of whether a hop is useful.
//!
//! This module gives the three schemes a common currency — **word-hops**,
//! cycles, and picojoules over an explicit topology — so the ablation
//! harness (`gnnie-bench`, Ablation A5) can put numbers behind the §VII
//! comparison. It is a standalone analysis layer: the engine's headline
//! cycle counts already charge LR through the weight-transfer toll, so
//! NoC results are reported separately rather than double-counted.

use serde::{Deserialize, Serialize};

use crate::cpe::{div_ceil, CpeArray};
use crate::weighting::RowSchedule;

/// An interconnect topology with a hop-distance metric.
///
/// Hops count link traversals between adjacent nodes (or switch stages,
/// for the indirect multistage network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// A shared broadcast bus: any pair of nodes is one transaction apart.
    /// GNNIE's row/column buses (§III: "Interleaved placement allows low
    /// latency and communication overhead with CPEs").
    Bus {
        /// Nodes on the bus.
        nodes: usize,
    },
    /// A unidirectional ring of `nodes` (EnGN's ring-edge-reduce).
    Ring {
        /// Nodes on the ring.
        nodes: usize,
    },
    /// A 2-D mesh with Manhattan routing.
    Mesh2d {
        /// Mesh rows.
        rows: usize,
        /// Mesh columns.
        cols: usize,
    },
    /// An indirect multistage (omega/butterfly) network over `ports`
    /// endpoints: every route crosses `⌈log₂ ports⌉` switch stages
    /// (AWB-GCN's rebalancing fabric).
    Multistage {
        /// Endpoint count.
        ports: usize,
    },
}

impl Topology {
    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Bus { nodes } | Topology::Ring { nodes } => nodes,
            Topology::Mesh2d { rows, cols } => rows * cols,
            Topology::Multistage { ports } => ports,
        }
    }

    /// Hop count from node `a` to node `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let n = self.nodes();
        assert!(a < n && b < n, "node index out of range ({a}, {b}) on {n} nodes");
        if a == b {
            return 0;
        }
        match *self {
            Topology::Bus { .. } => 1,
            Topology::Ring { nodes } => {
                // Unidirectional: data only travels forward around the ring.
                ((b + nodes - a) % nodes) as u64
            }
            Topology::Mesh2d { cols, .. } => {
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                (ar.abs_diff(br) + ac.abs_diff(bc)) as u64
            }
            Topology::Multistage { ports } => log2_ceil(ports),
        }
    }

    /// The worst-case hop count between any two distinct nodes.
    pub fn diameter(&self) -> u64 {
        match *self {
            Topology::Bus { .. } => 1,
            Topology::Ring { nodes } => nodes.saturating_sub(1) as u64,
            Topology::Mesh2d { rows, cols } => (rows - 1 + (cols - 1)) as u64,
            Topology::Multistage { ports } => log2_ceil(ports),
        }
    }
}

fn log2_ceil(n: usize) -> u64 {
    debug_assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

/// Physical link parameters shared by all schemes, so the comparison is
/// apples-to-apples: identical wires, different traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Words a link (or bus transaction) moves per cycle.
    pub words_per_cycle: u64,
    /// Energy per word per hop, in picojoules. On-chip wire energy is
    /// orders of magnitude below the 3.97 pJ/bit HBM figure; 0.06 pJ/word
    /// ≈ 2 fJ/bit/mm at a ~1 mm PE pitch in 32 nm.
    pub pj_per_word_hop: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams { words_per_cycle: 16, pj_per_word_hop: 0.06 }
    }
}

/// Accumulated interconnect traffic for one scheme on one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommLedger {
    /// Payload words injected into the network.
    pub words: u64,
    /// Words × hops actually traversed (the energy-relevant volume).
    pub word_hops: u64,
    /// Control/bookkeeping messages (routing updates, round barriers).
    pub control_msgs: u64,
    /// Rebalancing decision rounds taken.
    pub rounds: u64,
}

impl CommLedger {
    /// Records a payload transfer of `words` across `hops`.
    pub fn transfer(&mut self, words: u64, hops: u64) {
        self.words += words;
        self.word_hops += words * hops;
    }

    /// Serialized transfer cycles on the given links (control messages
    /// count as one word each).
    pub fn cycles(&self, link: &LinkParams) -> u64 {
        div_ceil(self.word_hops + self.control_msgs, link.words_per_cycle.max(1))
    }

    /// Transfer energy in picojoules (control messages count as one
    /// word-hop each).
    pub fn energy_pj(&self, link: &LinkParams) -> f64 {
        (self.word_hops + self.control_msgs) as f64 * link.pj_per_word_hop
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CommLedger) {
        self.words += other.words;
        self.word_hops += other.word_hops;
        self.control_msgs += other.control_msgs;
        self.rounds += other.rounds;
    }
}

/// The load-balancing communication schemes compared in §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RebalanceScheme {
    /// GNNIE: static FM binning + one LR offload per pass over the bus.
    GnnieLr,
    /// AWB-GCN-style iterative runtime rebalancing over a multistage
    /// network.
    AwbMultistage,
    /// EnGN-style ring-edge-reduce column broadcast.
    EngnRer,
}

impl std::fmt::Display for RebalanceScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RebalanceScheme::GnnieLr => "GNNIE FM+LR (bus)",
            RebalanceScheme::AwbMultistage => "AWB-style multistage rebalance",
            RebalanceScheme::EngnRer => "EnGN-style ring-edge-reduce",
        })
    }
}

/// GNNIE's LR traffic for one pass: the weights of every offloaded block
/// (`k` words each) cross the bus once, plus one control message per
/// heavy/light pair selected by the controller (§IV-C).
pub fn lr_traffic(sched: &RowSchedule, k: usize) -> CommLedger {
    let mut ledger =
        CommLedger { rounds: u64::from(!sched.lr_moves.is_empty()), ..Default::default() };
    let bus = Topology::Bus { nodes: 16.max(sched.rows.len()) };
    for mv in &sched.lr_moves {
        ledger.transfer(mv.blocks * k as u64, bus.hops(mv.from_row, mv.to_row));
        ledger.control_msgs += 1;
    }
    ledger
}

/// Parameters for the AWB-GCN-style runtime rebalancing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AwbRebalanceParams {
    /// Stop when `(max − mean)/mean` falls below this (AWB-GCN iterates
    /// until the distribution is "smooth").
    pub imbalance_tolerance: f64,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Operand words that travel with one migrated unit of work (the
    /// feature block the remote PE now needs).
    pub words_per_unit: u64,
}

impl Default for AwbRebalanceParams {
    fn default() -> Self {
        AwbRebalanceParams { imbalance_tolerance: 0.05, max_rounds: 16, words_per_unit: 16 }
    }
}

/// AWB-GCN-style iterative rebalancing (§VII: "multiple rounds of runtime
/// load-rebalancing ... high inter-PE communication").
///
/// Each round: every PE above the mean load offloads half its excess to
/// PEs below the mean; the migrated units carry their operands across the
/// multistage network (`⌈log₂ P⌉` hops each), and the controller
/// broadcasts new routing state to all P PEs. Rounds repeat until the
/// relative imbalance drops under the tolerance or the cap is hit.
/// Returns the ledger and the final per-PE load.
pub fn awb_rebalance_traffic(
    loads: &[u64],
    params: AwbRebalanceParams,
) -> (CommLedger, Vec<u64>) {
    let mut ledger = CommLedger::default();
    let p = loads.len();
    if p == 0 {
        return (ledger, Vec::new());
    }
    let net = Topology::Multistage { ports: p };
    let hops = net.diameter();
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / p as f64;
    let mut cur: Vec<u64> = loads.to_vec();
    if mean == 0.0 {
        return (ledger, cur);
    }
    for _ in 0..params.max_rounds {
        let max = cur.iter().copied().max().unwrap_or(0);
        if (max as f64 - mean) / mean <= params.imbalance_tolerance {
            break;
        }
        ledger.rounds += 1;
        // Each overloaded PE sheds half its excess this round; receivers
        // absorb proportionally to their slack (modelled in aggregate).
        let mut shed_total = 0u64;
        for load in cur.iter_mut() {
            let excess = load.saturating_sub(mean.ceil() as u64);
            let shed = excess / 2;
            *load -= shed;
            shed_total += shed;
        }
        let slacks: Vec<u64> =
            cur.iter().map(|&l| (mean.floor() as u64).saturating_sub(l)).collect();
        let slack_total: u64 = slacks.iter().sum::<u64>().max(1);
        let mut distributed = 0u64;
        for (load, &slack) in cur.iter_mut().zip(&slacks) {
            let share = shed_total * slack / slack_total;
            *load += share;
            distributed += share;
        }
        // Integer shares round down; park the remainder on the slackest
        // PE so work is conserved exactly.
        if let Some(idx) = (0..p).max_by_key(|&i| (slacks[i], std::cmp::Reverse(i))) {
            cur[idx] += shed_total - distributed;
        }
        ledger.transfer(shed_total * params.words_per_unit, hops);
        // Routing-state broadcast: one message to every PE.
        ledger.control_msgs += p as u64;
        if shed_total == 0 {
            break;
        }
    }
    (ledger, cur)
}

/// EnGN-style ring-edge-reduce traffic for one aggregation phase: each of
/// the `edge_updates` partial results (one `f_out`-word vector each)
/// circulates the column ring so every PE in the column sees it —
/// `nodes − 1` hops per word, useful or not (§VII).
pub fn rer_traffic(edge_updates: u64, f_out: usize, column_nodes: usize) -> CommLedger {
    let ring = Topology::Ring { nodes: column_nodes.max(2) };
    let mut ledger = CommLedger::default();
    ledger.transfer(edge_updates * f_out as u64, ring.diameter());
    ledger
}

/// GNNIE's aggregation-side traffic on the same phase: each edge update
/// sends its partial one bus transaction up the column to the MPE
/// (§V-C's pairwise adder-tree placement keeps operands local).
pub fn gnnie_aggregation_traffic(edge_updates: u64, f_out: usize) -> CommLedger {
    let mut ledger = CommLedger::default();
    ledger.transfer(edge_updates * f_out as u64, 1);
    ledger
}

/// A named (scheme, ledger) pair with derived cycles/energy, ready for
/// the harness table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommReport {
    /// Which scheme produced the traffic.
    pub scheme: RebalanceScheme,
    /// The raw traffic ledger.
    pub ledger: CommLedger,
    /// Serialized transfer cycles under [`LinkParams`].
    pub cycles: u64,
    /// Transfer energy in picojoules.
    pub energy_pj: f64,
}

impl CommReport {
    /// Evaluates `ledger` under `link`.
    pub fn new(scheme: RebalanceScheme, ledger: CommLedger, link: &LinkParams) -> Self {
        CommReport {
            scheme,
            ledger,
            cycles: ledger.cycles(link),
            energy_pj: ledger.energy_pj(link),
        }
    }
}

/// Convenience: the per-row loads (cycles) of a weighting schedule, the
/// quantity AWB-GCN's runtime rebalancer equalizes.
pub fn schedule_loads(sched: &RowSchedule, arr: &CpeArray) -> Vec<u64> {
    sched.per_row_cycles(arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::weighting::{schedule, BlockProfile, WeightingMode};
    use gnnie_graph::{Dataset, SyntheticDataset};

    #[test]
    fn bus_is_one_hop_everywhere() {
        let t = Topology::Bus { nodes: 16 };
        assert_eq!(t.hops(0, 15), 1);
        assert_eq!(t.hops(3, 4), 1);
        assert_eq!(t.hops(5, 5), 0);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn ring_hops_wrap_forward_only() {
        let t = Topology::Ring { nodes: 8 };
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(1, 0), 7, "unidirectional ring must wrap");
        assert_eq!(t.hops(6, 2), 4);
        assert_eq!(t.diameter(), 7);
    }

    #[test]
    fn mesh_uses_manhattan_distance() {
        let t = Topology::Mesh2d { rows: 4, cols: 4 };
        assert_eq!(t.hops(0, 15), 6); // (0,0) → (3,3)
        assert_eq!(t.hops(5, 6), 1); // (1,1) → (1,2)
        assert_eq!(t.hops(2, 14), 3); // (0,2) → (3,2)
        assert_eq!(t.diameter(), 6);
    }

    #[test]
    fn multistage_crosses_log2_stages() {
        assert_eq!(Topology::Multistage { ports: 16 }.hops(0, 9), 4);
        assert_eq!(Topology::Multistage { ports: 256 }.hops(1, 2), 8);
        assert_eq!(Topology::Multistage { ports: 17 }.diameter(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hops_reject_bad_index() {
        let _ = Topology::Bus { nodes: 4 }.hops(0, 4);
    }

    #[test]
    fn ledger_accumulates_and_prices() {
        let mut l = CommLedger::default();
        l.transfer(100, 3);
        l.transfer(50, 1);
        l.control_msgs = 10;
        assert_eq!(l.words, 150);
        assert_eq!(l.word_hops, 350);
        let link = LinkParams::default();
        assert_eq!(l.cycles(&link), (350u64 + 10).div_ceil(16));
        assert!((l.energy_pj(&link) - 360.0 * 0.06).abs() < 1e-9);
    }

    #[test]
    fn ledger_merge_adds_fields() {
        let mut a = CommLedger { words: 1, word_hops: 2, control_msgs: 3, rounds: 1 };
        a.merge(&CommLedger { words: 10, word_hops: 20, control_msgs: 30, rounds: 2 });
        assert_eq!(a, CommLedger { words: 11, word_hops: 22, control_msgs: 33, rounds: 3 });
    }

    #[test]
    fn lr_traffic_matches_schedule_moves() {
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.3, 7);
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        let arr = CpeArray::new(&cfg);
        let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
        let sched = schedule(&profile, &arr, WeightingMode::FmLr);
        let ledger = lr_traffic(&sched, profile.k());
        assert_eq!(ledger.words, sched.lr_moved_blocks * profile.k() as u64);
        // Bus: every move is exactly one hop.
        assert_eq!(ledger.word_hops, ledger.words);
        assert_eq!(ledger.control_msgs, sched.lr_moves.len() as u64);
        assert!(ledger.rounds <= 1, "LR decides once per pass");
    }

    #[test]
    fn awb_rebalance_converges_and_conserves_load() {
        let loads = vec![1000, 10, 10, 10, 10, 10, 10, 10];
        let total: u64 = loads.iter().sum();
        let (ledger, after) = awb_rebalance_traffic(&loads, AwbRebalanceParams::default());
        assert!(ledger.rounds >= 2, "imbalanced input needs multiple rounds");
        assert!(ledger.words > 0);
        let after_total: u64 = after.iter().sum();
        assert_eq!(after_total, total, "rebalancing must conserve work");
        let max = *after.iter().max().unwrap() as f64;
        let mean = total as f64 / loads.len() as f64;
        assert!(max / mean < 1.6, "load must flatten: {after:?}");
    }

    #[test]
    fn awb_balanced_input_needs_no_rounds() {
        let (ledger, after) = awb_rebalance_traffic(&[100; 16], AwbRebalanceParams::default());
        assert_eq!(ledger.rounds, 0);
        assert_eq!(ledger.words, 0);
        assert_eq!(after, vec![100; 16]);
    }

    #[test]
    fn awb_empty_and_zero_loads_are_free() {
        let (l0, v0) = awb_rebalance_traffic(&[], AwbRebalanceParams::default());
        assert_eq!((l0.words, v0.len()), (0, 0));
        let (l1, _) = awb_rebalance_traffic(&[0, 0, 0], AwbRebalanceParams::default());
        assert_eq!(l1.rounds, 0);
    }

    #[test]
    fn awb_respects_round_cap() {
        let params = AwbRebalanceParams {
            imbalance_tolerance: 0.0, // unreachable: forces the cap
            max_rounds: 3,
            words_per_unit: 4,
        };
        let (ledger, _) = awb_rebalance_traffic(&[1_000_000, 1, 1, 1], params);
        assert!(ledger.rounds <= 3);
    }

    #[test]
    fn rer_moves_more_than_gnnie_bus_on_the_same_phase() {
        let rer = rer_traffic(10_000, 128, 16);
        let bus = gnnie_aggregation_traffic(10_000, 128);
        assert_eq!(rer.words, bus.words, "same payload");
        assert_eq!(rer.word_hops, 15 * bus.word_hops, "ring broadcast is 15x the bus");
    }

    #[test]
    fn comm_report_derives_consistent_numbers() {
        let link = LinkParams::default();
        let ledger = rer_traffic(100, 16, 16);
        let report = CommReport::new(RebalanceScheme::EngnRer, ledger, &link);
        assert_eq!(report.cycles, ledger.cycles(&link));
        assert!((report.energy_pj - ledger.energy_pj(&link)).abs() < 1e-9);
        assert_eq!(RebalanceScheme::EngnRer.to_string(), "EnGN-style ring-edge-reduce");
    }

    #[test]
    fn gnnie_lr_is_orders_of_magnitude_cheaper_than_awb_on_real_features() {
        // The §VII headline, end to end on a real dataset profile.
        let ds = SyntheticDataset::generate(Dataset::Citeseer, 0.3, 11);
        let cfg = AcceleratorConfig::paper(Dataset::Citeseer);
        let arr = CpeArray::new(&cfg);
        let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
        // GNNIE: LR on top of FM.
        let lr_sched = schedule(&profile, &arr, WeightingMode::FmLr);
        let gnnie = lr_traffic(&lr_sched, profile.k());
        // AWB: runtime rebalance from the unbalanced (baseline) load.
        let base_sched = schedule(&profile, &arr, WeightingMode::Baseline);
        let loads = schedule_loads(&base_sched, &arr);
        let (awb, _) = awb_rebalance_traffic(&loads, AwbRebalanceParams::default());
        assert!(
            awb.word_hops > 10 * gnnie.word_hops.max(1),
            "AWB {awb:?} must dwarf GNNIE {gnnie:?}"
        );
    }
}
