//! The GNNIE accelerator model — the paper's primary contribution.
//!
//! GNNIE (Mondal et al., DAC 2022) is a single-engine GNN inference
//! accelerator that runs both computation phases of every layer on one
//! 16×16 array of computation PEs (CPEs):
//!
//! * **Weighting** (`h·W`) with three load-balancing mechanisms — vertex
//!   feature **k-blocking**, the **flexible MAC (FM)** heterogeneous row
//!   groups, and **load redistribution (LR)** between row pairs
//!   ([`weighting`], paper §IV);
//! * **Aggregation** over graph neighborhoods, driven by the
//!   **degree-aware cache** of `gnnie-mem` so all DRAM traffic stays
//!   sequential, with degree-balanced edge mapping ([`aggregation`],
//!   paper §V–VI), and the **linear-complexity attention reordering** for
//!   GATs ([`gat`], paper §V-A).
//!
//! The crate provides three views of the machine:
//!
//! * [`engine::Engine`] — the cycle/energy model: runs a full model on a
//!   dataset and produces an [`report::InferenceReport`] with per-phase
//!   cycles, DRAM counters, and a per-component energy ledger;
//! * [`verify`] — the *functional* datapath: performs the actual
//!   arithmetic in hardware execution order (block scheduling, cache-driven
//!   edge order) so the result can be checked against `gnnie-gnn`'s golden
//!   models;
//! * [`config::AcceleratorConfig`] — the paper's design points, including
//!   Designs A–E of the Fig. 17 ablation.
//!
//! # Example
//!
//! ```
//! use gnnie_core::config::AcceleratorConfig;
//! use gnnie_core::engine::Engine;
//! use gnnie_gnn::model::{GnnModel, ModelConfig};
//! use gnnie_graph::{Dataset, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(Dataset::Cora, 0.1, 42);
//! let cfg = AcceleratorConfig::paper(Dataset::Cora);
//! let model = ModelConfig::paper(GnnModel::Gcn, &ds.spec);
//! let report = Engine::new(cfg).run(&model, &ds);
//! assert!(report.total_cycles > 0);
//! assert!(report.energy.total_pj() > 0.0);
//! ```

pub mod aggregation;
pub mod config;
pub mod cpe;
pub mod energy;
pub mod engine;
pub mod gat;
pub mod mpe;
pub mod noc;
pub mod obs;
pub mod report;
pub mod verify;
pub mod weighting;

pub use config::{AcceleratorConfig, Design};
pub use cpe::CpeArray;
pub use engine::Engine;
pub use gnnie_mem::{SimPool, SimThreads};
pub use report::{InferenceReport, PhaseReport};
pub use weighting::{WeightingMode, WeightingReport};
