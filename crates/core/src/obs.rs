//! Observability emission for the engine: reconstructs the run's span
//! timeline and records its metrics from a finished [`InferenceReport`].
//!
//! Nothing here touches the sharded simulation loops. Every span is
//! derived — at one serial call site — from report fields that are
//! already bit-identical at any `sim_threads` width (the engine's phase
//! accounting, the scale-out merge's [`ChipLane`]s, the per-tier
//! [`TierStats`](gnnie_mem::TierStats)), so the trace inherits the
//! replay-stable contract instead of having to re-prove it.
//!
//! Track layout (the Chrome export turns each pair into a pid/tid row):
//!
//! * `engine/phases` — preprocessing, per-layer Weighting/Aggregation,
//!   coarsening (DiffPool), writeback, laid end to end exactly as
//!   `total_cycles` sums them.
//! * `chips/chip<N>` — each chip's partition walk, its cut-edge updates,
//!   and its `halo xfer` link transfer inside the owning Aggregation
//!   window. A single-chip run shows one `chip0` lane.
//! * `tiers/<name>` — per-tier channel occupancy per layer, with
//!   hit/miss/eviction/fill counts as span args. Tier spans measure
//!   channel cycles and may extend past the phase window they start in
//!   (the walk overlaps transfers).

use gnnie_obs::{Metrics, Obs, Trace};

use crate::aggregation::ChipLane;
use crate::report::InferenceReport;

impl InferenceReport {
    /// Emits the run's span timeline onto `trace` (no-op when off).
    pub fn emit_trace(&self, trace: &Trace) {
        if !trace.enabled() {
            return;
        }
        let mut t = 0u64;
        trace.span("engine", "phases", "preprocessing", t, self.preprocessing_cycles, &[]);
        t += self.preprocessing_cycles;
        for layer in &self.layers {
            let idx = layer.layer;
            let w = layer.weighting.total_cycles;
            trace.span(
                "engine",
                "phases",
                &format!("weighting L{idx}"),
                t,
                w,
                &[("macs_issued", layer.weighting.macs_issued.into())],
            );
            t += w;
            let a = layer.aggregation.total_cycles;
            trace.span(
                "engine",
                "phases",
                &format!("aggregation L{idx}"),
                t,
                a,
                &[
                    ("edge_updates", layer.aggregation.edge_updates.into()),
                    ("stall_cycles", layer.aggregation.stall_cycles.into()),
                ],
            );
            // Per-chip lanes inside the Aggregation window. Single-chip
            // runs carry no lanes; synthesize chip 0 from the phase total
            // so every trace has a chips process.
            let single = [ChipLane { chip: 0, walk_cycles: a, ..ChipLane::default() }];
            let lanes: &[ChipLane] = if layer.aggregation.chip_lanes.is_empty() {
                &single
            } else {
                &layer.aggregation.chip_lanes
            };
            for lane in lanes {
                let track = format!("chip{}", lane.chip);
                trace.span(
                    "chips",
                    &track,
                    &format!("walk L{idx}"),
                    t,
                    lane.walk_cycles,
                    &[("cut_edges", lane.cut_edges.into())],
                );
                let mut at = t + lane.walk_cycles;
                if lane.cut_cycles > 0 {
                    trace.span(
                        "chips",
                        &track,
                        &format!("cut updates L{idx}"),
                        at,
                        lane.cut_cycles,
                        &[],
                    );
                    at += lane.cut_cycles;
                }
                if lane.link_cycles > 0 {
                    trace.span(
                        "chips",
                        &track,
                        &format!("halo xfer L{idx}"),
                        at,
                        lane.link_cycles,
                        &[
                            ("link_bytes", lane.link_bytes.into()),
                            ("halo_vertices", lane.halo_vertices.into()),
                        ],
                    );
                }
            }
            if let Some(cache) = layer.aggregation.cache.as_ref() {
                for tier in &cache.tiers {
                    trace.span(
                        "tiers",
                        &tier.name,
                        &format!("L{idx} occupancy"),
                        t,
                        tier.cycles,
                        &[
                            ("hits", tier.hits.into()),
                            ("misses", tier.misses.into()),
                            ("evictions", tier.evictions.into()),
                            ("fill_bytes", tier.fill_bytes.into()),
                        ],
                    );
                    trace.counter("tiers", &tier.name, "evictions", t + a, tier.evictions);
                }
            }
            t += a;
        }
        if self.coarsening_cycles > 0 {
            trace.span("engine", "phases", "coarsening", t, self.coarsening_cycles, &[]);
            t += self.coarsening_cycles;
        }
        trace.span("engine", "phases", "writeback", t, self.writeback_cycles, &[]);
        t += self.writeback_cycles;
        debug_assert_eq!(t, self.total_cycles, "the span timeline must tile total_cycles");
    }

    /// Records the run's metrics into `metrics` (no-op when off):
    /// `core.engine.*` phase totals here, `mem.cache.*` / `mem.tier.*`
    /// via each layer's cache result.
    pub fn record_metrics(&self, metrics: &Metrics) {
        if !metrics.enabled() {
            return;
        }
        metrics.counter_add("core.engine.preprocessing_cycles", self.preprocessing_cycles);
        metrics.counter_add("core.engine.weighting_cycles", self.weighting_cycles());
        metrics.counter_add("core.engine.aggregation_cycles", self.aggregation_cycles());
        metrics.counter_add("core.engine.coarsening_cycles", self.coarsening_cycles);
        metrics.counter_add("core.engine.writeback_cycles", self.writeback_cycles);
        metrics.counter_add("core.engine.total_cycles", self.total_cycles);
        metrics.counter_add("core.engine.layers", self.layers.len() as u64);
        metrics.counter_add("core.engine.effective_ops", self.effective_ops);
        metrics.counter_add("core.engine.weight_load_cycles", self.weight_load_cycles);
        metrics.counter_add("core.engine.inter_chip_bytes", self.inter_chip_bytes());
        metrics.counter_add("core.engine.inter_chip_cycles", self.inter_chip_cycles());
        metrics.counter_add("core.dram.total_bytes", self.dram.total_bytes());
        metrics.counter_add("core.dram.random_bytes", self.dram.random_bytes());
        metrics.gauge_set("core.engine.latency_us", self.latency_s * 1e6);
        metrics.gauge_set("core.engine.energy_uj", self.energy.total_pj() / 1e6);
        for layer in &self.layers {
            if let Some(cache) = layer.aggregation.cache.as_ref() {
                cache.record_metrics(metrics);
            }
        }
    }

    /// Both surfaces at once (the engine's `finish` hook).
    pub fn record_obs(&self, obs: &Obs) {
        self.emit_trace(&obs.trace);
        self.record_metrics(&obs.metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::engine::Engine;
    use gnnie_gnn::model::ModelConfig;
    use gnnie_graph::{Dataset, SyntheticDataset};
    use gnnie_obs::TraceEvent;

    fn run_report(chips: usize) -> InferenceReport {
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.05, 11);
        let mut cfg = AcceleratorConfig::paper(Dataset::Cora);
        cfg.chips = chips;
        let model = ModelConfig::paper(gnnie_gnn::model::GnnModel::Gcn, &ds.spec);
        Engine::new(cfg).run(&model, &ds)
    }

    #[test]
    fn phase_spans_tile_total_cycles_exactly() {
        let report = run_report(1);
        let trace = Trace::recording();
        report.emit_trace(&trace);
        let phase_sum: u64 = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { process, track, dur, .. }
                    if process == "engine" && track == "phases" =>
                {
                    Some(*dur)
                }
                _ => None,
            })
            .sum();
        assert_eq!(phase_sum, report.total_cycles);
    }

    #[test]
    fn multi_chip_reports_carry_a_lane_per_chip() {
        let report = run_report(4);
        for layer in &report.layers {
            assert!(
                !layer.aggregation.chip_lanes.is_empty(),
                "scale-out layers must record their lanes"
            );
            for lane in &layer.aggregation.chip_lanes {
                assert!(lane.walk_cycles > 0, "chip {} walked nothing", lane.chip);
            }
        }
        let trace = Trace::recording();
        report.emit_trace(&trace);
        let chip_tracks: std::collections::BTreeSet<String> = trace
            .events()
            .iter()
            .filter(|e| e.process() == "chips")
            .map(|e| e.track().to_string())
            .collect();
        assert_eq!(chip_tracks.len(), 4, "one track per chip: {chip_tracks:?}");
    }

    #[test]
    fn single_chip_traces_synthesize_chip0() {
        let report = run_report(1);
        let trace = Trace::recording();
        report.emit_trace(&trace);
        assert!(trace.events().iter().any(|e| e.track() == "chip0"));
    }

    #[test]
    fn metrics_cover_engine_and_cache_surfaces() {
        let report = run_report(1);
        let metrics = Metrics::recording();
        report.record_metrics(&metrics);
        let reg = metrics.snapshot();
        for name in [
            "core.engine.total_cycles",
            "core.engine.aggregation_cycles",
            "core.dram.total_bytes",
            "mem.cache.evictions",
        ] {
            assert!(reg.get(name).is_some(), "missing metric {name}:\n{}", reg.render());
        }
    }

    #[test]
    fn disabled_obs_is_a_no_op() {
        let report = run_report(1);
        report.record_obs(&Obs::off()); // must not panic or allocate sinks
    }
}
