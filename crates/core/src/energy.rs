//! Per-operation energy constants and the ledger-filling helpers.
//!
//! The paper extracts per-op/per-access energies once from Synopsys DC
//! (32 nm) and CACTI 6.5, then multiplies by activity counts; we encode
//! equivalent constants (DESIGN.md §1). HBM energy is the paper's
//! 3.97 pJ/bit. The constants are calibrated so that the evaluated
//! configuration lands near the paper's 3.9 W envelope at full activity
//! (§VIII-D) — see `power_envelope_watts` and its test.

use serde::{Deserialize, Serialize};

use gnnie_mem::{Component, EnergyLedger};

use crate::config::AcceleratorConfig;

/// Per-operation dynamic energy at 32 nm, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpEnergy {
    /// One multiply-accumulate (datapath + local registers).
    pub mac_pj: f64,
    /// One SFU op (LeakyReLU / LUT exp / divide).
    pub sfu_pj: f64,
    /// One MPE psum update (accumulate + spad access).
    pub mpe_update_pj: f64,
    /// CPE spad access, per byte.
    pub spad_pj_per_byte: f64,
    /// Input buffer access, per byte (CACTI-like, 256–512 KB SRAM).
    pub input_buf_pj_per_byte: f64,
    /// Output buffer access, per byte (1 MB SRAM).
    pub output_buf_pj_per_byte: f64,
    /// Weight buffer access, per byte (128 KB SRAM).
    pub weight_buf_pj_per_byte: f64,
    /// HBM 2.0 transfer, per byte (paper: 3.97 pJ/bit).
    pub dram_pj_per_byte: f64,
    /// Static/leakage + controller power in watts, charged by time.
    pub static_watts: f64,
}

impl OpEnergy {
    /// The 32 nm constants used throughout the reproduction.
    pub fn paper_32nm() -> Self {
        OpEnergy {
            mac_pj: 1.7,
            sfu_pj: 3.2,
            mpe_update_pj: 0.6,
            spad_pj_per_byte: 0.2,
            input_buf_pj_per_byte: 0.35,
            output_buf_pj_per_byte: 0.52,
            weight_buf_pj_per_byte: 0.28,
            dram_pj_per_byte: 3.97 * 8.0,
            static_watts: 0.55,
        }
    }

    /// Dynamic power at full MAC activity for `cfg`, in watts — the
    /// quantity the paper reports as 3.9 W for the evaluated design.
    pub fn power_envelope_watts(&self, cfg: &AcceleratorConfig) -> f64 {
        // Full activity: every MAC busy each cycle, spads feeding them
        // (2 operand bytes per MAC), MPEs absorbing one update per column.
        let macs = cfg.total_macs() as f64;
        let per_cycle_pj = macs * self.mac_pj
            + macs * 2.0 * self.spad_pj_per_byte
            + (cfg.array_cols as f64) * self.mpe_update_pj;
        per_cycle_pj * 1e-12 * cfg.clock_hz + self.static_watts
    }
}

impl Default for OpEnergy {
    fn default() -> Self {
        Self::paper_32nm()
    }
}

/// Activity counts of one phase, converted to energy via [`OpEnergy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// MAC operations issued.
    pub macs: u64,
    /// SFU operations (exp, LeakyReLU, divide).
    pub sfu_ops: u64,
    /// MPE psum updates.
    pub mpe_updates: u64,
    /// CPE spad bytes moved.
    pub spad_bytes: u64,
    /// Input buffer bytes accessed.
    pub input_buf_bytes: u64,
    /// Output buffer bytes accessed.
    pub output_buf_bytes: u64,
    /// Weight buffer bytes accessed.
    pub weight_buf_bytes: u64,
    /// DRAM bytes serving the input buffer.
    pub dram_input_bytes: u64,
    /// DRAM bytes serving the output buffer (psum spills + writebacks).
    pub dram_output_bytes: u64,
    /// DRAM bytes serving the weight buffer.
    pub dram_weight_bytes: u64,
}

impl ActivityCounts {
    /// Charges these counts to `ledger` at the given constants.
    pub fn charge(&self, ops: &OpEnergy, ledger: &mut EnergyLedger) {
        ledger.add(Component::Mac, self.macs as f64 * ops.mac_pj);
        ledger.add(Component::Sfu, self.sfu_ops as f64 * ops.sfu_pj);
        ledger.add(Component::Mpe, self.mpe_updates as f64 * ops.mpe_update_pj);
        ledger.add(Component::Spad, self.spad_bytes as f64 * ops.spad_pj_per_byte);
        ledger.add(
            Component::InputBuffer,
            self.input_buf_bytes as f64 * ops.input_buf_pj_per_byte,
        );
        ledger.add(
            Component::OutputBuffer,
            self.output_buf_bytes as f64 * ops.output_buf_pj_per_byte,
        );
        ledger.add(
            Component::WeightBuffer,
            self.weight_buf_bytes as f64 * ops.weight_buf_pj_per_byte,
        );
        ledger.add(Component::DramInput, self.dram_input_bytes as f64 * ops.dram_pj_per_byte);
        ledger.add(Component::DramOutput, self.dram_output_bytes as f64 * ops.dram_pj_per_byte);
        ledger.add(Component::DramWeight, self.dram_weight_bytes as f64 * ops.dram_pj_per_byte);
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &ActivityCounts) {
        self.macs += other.macs;
        self.sfu_ops += other.sfu_ops;
        self.mpe_updates += other.mpe_updates;
        self.spad_bytes += other.spad_bytes;
        self.input_buf_bytes += other.input_buf_bytes;
        self.output_buf_bytes += other.output_buf_bytes;
        self.weight_buf_bytes += other.weight_buf_bytes;
        self.dram_input_bytes += other.dram_input_bytes;
        self.dram_output_bytes += other.dram_output_bytes;
        self.dram_weight_bytes += other.dram_weight_bytes;
    }
}

/// Static energy for `cycles` at `clock_hz`, in picojoules.
pub fn static_energy_pj(ops: &OpEnergy, cycles: u64, clock_hz: f64) -> f64 {
    ops.static_watts * (cycles as f64 / clock_hz) * 1e12
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnie_graph::Dataset;

    #[test]
    fn power_envelope_matches_paper_ballpark() {
        let ops = OpEnergy::paper_32nm();
        let cfg = AcceleratorConfig::paper(Dataset::Pubmed);
        let w = ops.power_envelope_watts(&cfg);
        // Paper §VIII-D: 3.9 W in 32 nm. Accept ±15%.
        assert!((w - 3.9).abs() / 3.9 < 0.15, "power envelope {w} W");
    }

    #[test]
    fn charge_fills_all_components() {
        let ops = OpEnergy::paper_32nm();
        let counts = ActivityCounts {
            macs: 100,
            sfu_ops: 10,
            mpe_updates: 20,
            spad_bytes: 400,
            input_buf_bytes: 100,
            output_buf_bytes: 100,
            weight_buf_bytes: 100,
            dram_input_bytes: 1000,
            dram_output_bytes: 2000,
            dram_weight_bytes: 500,
        };
        let mut ledger = EnergyLedger::new();
        counts.charge(&ops, &mut ledger);
        assert!(ledger.pj_of(Component::Mac) > 0.0);
        assert!(ledger.dram_pj() > ledger.pj_of(Component::Mac), "DRAM dominates per byte");
        // DRAM output was 2× input bytes.
        assert!(
            (ledger.pj_of(Component::DramOutput) / ledger.pj_of(Component::DramInput) - 2.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ActivityCounts { macs: 1, ..Default::default() };
        let b = ActivityCounts { macs: 2, sfu_ops: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.macs, 3);
        assert_eq!(a.sfu_ops, 3);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let ops = OpEnergy::paper_32nm();
        let e1 = static_energy_pj(&ops, 1_000, 1.3e9);
        let e2 = static_energy_pj(&ops, 2_000, 1.3e9);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dram_per_byte_matches_397_pj_per_bit() {
        let ops = OpEnergy::paper_32nm();
        assert!((ops.dram_pj_per_byte - 31.76).abs() < 1e-9);
    }
}
