//! The Weighting-phase cycle model (paper §IV).
//!
//! Weighting multiplies each (sparse) vertex feature vector by the dense
//! weight matrix under a weight-stationary dataflow:
//!
//! * the feature vector is split into `M` **k-blocks** (`k = ⌈F_in/M⌉`),
//!   one per CPE row; zero blocks are skipped entirely (§IV-A);
//! * a **pass** processes all vertices against `N` weight columns; the
//!   layer needs `⌈F_out/N⌉` passes, each with identical block workload;
//! * without FM, block `b` is pinned to row `b`, so rows inherit the
//!   sparsity imbalance of feature regions (Fig. 2 → Fig. 16 baseline);
//! * with **FM** (§IV-C), blocks are binned by nonzero count (linear-time
//!   counting sort) and bins are assigned to row groups in ascending-MAC
//!   order, the work share of each group proportional to its MAC capacity;
//! * with **LR**, heavily- and lightly-loaded rows are paired and whole
//!   blocks are offloaded while that reduces the pair's makespan, each
//!   move paying a weight-transfer toll.
//!
//! # Example
//!
//! ```
//! use gnnie_core::config::AcceleratorConfig;
//! use gnnie_core::cpe::CpeArray;
//! use gnnie_core::weighting::{schedule, BlockProfile, WeightingMode};
//! use gnnie_graph::{Dataset, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(Dataset::Cora, 0.05, 7);
//! let arr = CpeArray::new(&AcceleratorConfig::paper(Dataset::Cora));
//! let profile = BlockProfile::from_sparse(&ds.features, arr.rows());
//!
//! let base = schedule(&profile, &arr, WeightingMode::Baseline);
//! let fm = schedule(&profile, &arr, WeightingMode::Fm);
//! // FM never loses to the pinned placement, and both schedules run the
//! // same number of nonzero blocks.
//! assert!(fm.makespan(&arr) <= base.makespan(&arr));
//! let blocks = |s: &gnnie_core::weighting::RowSchedule| {
//!     s.rows.iter().map(|r| r.len()).sum::<usize>()
//! };
//! assert_eq!(blocks(&fm), blocks(&base));
//! ```

use serde::{Deserialize, Serialize};

use gnnie_mem::{HbmModel, SimPool};
use gnnie_tensor::CsrMatrix;

use crate::config::AcceleratorConfig;
use crate::cpe::{div_ceil, CpeArray};
use crate::mpe;

/// Cycles to stream the weights of one offloaded block into the target
/// row's spad (k words over the 16-wide row broadcast bus).
const LR_WEIGHT_WORDS_PER_CYCLE: u64 = 16;

/// Which §IV load-balancing mechanisms are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightingMode {
    /// Block `b` pinned to row `b`; no reordering.
    Baseline,
    /// Flexible-MAC workload reordering.
    Fm,
    /// FM plus pairwise load redistribution.
    FmLr,
}

impl WeightingMode {
    /// Derives the mode from a configuration's feature flags.
    pub fn from_config(cfg: &AcceleratorConfig) -> Self {
        match (cfg.enable_fm, cfg.enable_lr) {
            (true, true) => WeightingMode::FmLr,
            (true, false) => WeightingMode::Fm,
            _ => WeightingMode::Baseline,
        }
    }
}

impl std::fmt::Display for WeightingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WeightingMode::Baseline => "baseline",
            WeightingMode::Fm => "FM",
            WeightingMode::FmLr => "FM+LR",
        })
    }
}

/// Per-(vertex, block) nonzero counts: the workload the scheduler bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    vertices: usize,
    f_in: usize,
    k: usize,
    blocks_per_vertex: usize,
    /// Row-major `vertices × blocks_per_vertex` nonzero counts.
    nnz: Vec<u32>,
}

impl BlockProfile {
    /// Profiles a sparse feature matrix for an `array_rows`-row CPE array.
    ///
    /// # Panics
    ///
    /// Panics if `array_rows` is zero.
    pub fn from_sparse(features: &CsrMatrix, array_rows: usize) -> Self {
        Self::from_sparse_pooled(features, array_rows, &SimPool::serial())
    }

    /// [`BlockProfile::from_sparse`] with the per-vertex scan sharded
    /// over `pool`. Shards cover contiguous vertex ranges and each fills
    /// its own slice of the row-major count array, so the profile is
    /// bit-identical to the serial build at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `array_rows` is zero.
    pub fn from_sparse_pooled(features: &CsrMatrix, array_rows: usize, pool: &SimPool) -> Self {
        assert!(array_rows > 0, "need at least one CPE row");
        let vertices = features.rows();
        let f_in = features.cols();
        let k = div_ceil(f_in.max(1) as u64, array_rows as u64) as usize;
        let nnz: Vec<u32> = pool
            .map_ranges(vertices, |range| {
                let mut part = vec![0u32; range.len() * array_rows];
                for (i, v) in range.enumerate() {
                    for b in 0..array_rows {
                        let lo = b * k;
                        if lo >= f_in {
                            break;
                        }
                        let hi = ((b + 1) * k).min(f_in);
                        part[i * array_rows + b] = features.row_nnz_in_range(v, lo, hi) as u32;
                    }
                }
                part
            })
            .concat();
        BlockProfile { vertices, f_in, k, blocks_per_vertex: array_rows, nnz }
    }

    /// Profiles dense features (`nnz = block width` everywhere): the
    /// hidden-layer case where the RLC decoder is bypassed (§III).
    ///
    /// # Panics
    ///
    /// Panics if `array_rows` is zero.
    pub fn dense(vertices: usize, f_in: usize, array_rows: usize) -> Self {
        assert!(array_rows > 0, "need at least one CPE row");
        let k = div_ceil(f_in.max(1) as u64, array_rows as u64) as usize;
        // Every vertex carries the same block row; build it once and tile.
        let mut row = vec![0u32; array_rows];
        for (b, slot) in row.iter_mut().enumerate() {
            let lo = b * k;
            if lo >= f_in {
                break;
            }
            *slot = (((b + 1) * k).min(f_in) - lo) as u32;
        }
        let mut nnz = Vec::with_capacity(vertices * array_rows);
        for _ in 0..vertices {
            nnz.extend_from_slice(&row);
        }
        BlockProfile { vertices, f_in, k, blocks_per_vertex: array_rows, nnz }
    }

    /// Number of vertices profiled.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Input feature width.
    pub fn f_in(&self) -> usize {
        self.f_in
    }

    /// Block size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total nonzeros across all blocks.
    pub fn total_nnz(&self) -> u64 {
        self.nnz.iter().map(|&z| z as u64).sum()
    }

    /// Nonzero count of block `b` of vertex `v`.
    pub fn block_nnz(&self, v: usize, b: usize) -> u32 {
        self.nnz[v * self.blocks_per_vertex + b]
    }

    /// Count of all-zero blocks (skipped for free, §IV-A).
    pub fn zero_blocks(&self) -> u64 {
        self.nnz.iter().filter(|&&z| z == 0).count() as u64
    }

    /// [`BlockProfile::total_nnz`] sharded over `pool` (per-shard sums
    /// added in shard order; exact for any worker count).
    pub fn total_nnz_pooled(&self, pool: &SimPool) -> u64 {
        pool.sum_ranges(self.nnz.len(), |r| self.nnz[r].iter().map(|&z| z as u64).sum())
    }

    /// [`BlockProfile::zero_blocks`] sharded over `pool`.
    pub fn zero_blocks_pooled(&self, pool: &SimPool) -> u64 {
        pool.sum_ranges(self.nnz.len(), |r| {
            self.nnz[r].iter().filter(|&&z| z == 0).count() as u64
        })
    }
}

/// One LR offload decision: `blocks` k-blocks moved from a heavy row to a
/// light row (the weight words travel with them, §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LrMove {
    /// Source (heavily loaded) CPE row.
    pub from_row: usize,
    /// Destination (lightly loaded) CPE row.
    pub to_row: usize,
    /// Whole blocks offloaded along this pair.
    pub blocks: u64,
}

/// The per-row schedule produced by the §IV scheduler: for each CPE row,
/// the nonzero counts of the blocks it executes in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSchedule {
    /// `rows[r]` = nnz of each block assigned to row `r`.
    pub rows: Vec<Vec<u32>>,
    /// Blocks moved by LR (0 unless LR ran).
    pub lr_moved_blocks: u64,
    /// The individual heavy→light offloads behind `lr_moved_blocks`
    /// (empty unless LR ran); feeds the interconnect study in [`crate::noc`].
    pub lr_moves: Vec<LrMove>,
}

impl RowSchedule {
    /// Cycles each row needs for one pass.
    pub fn per_row_cycles(&self, arr: &CpeArray) -> Vec<u64> {
        self.rows
            .iter()
            .enumerate()
            .map(|(r, blocks)| blocks.iter().map(|&z| arr.block_cycles(r, z as usize)).sum())
            .collect()
    }

    /// The slowest row's cycles for one pass — the §IV balancing objective.
    pub fn makespan(&self, arr: &CpeArray) -> u64 {
        self.per_row_cycles(arr).into_iter().max().unwrap_or(0)
    }
}

/// Builds the per-row schedule for `mode`.
pub fn schedule(profile: &BlockProfile, arr: &CpeArray, mode: WeightingMode) -> RowSchedule {
    schedule_pooled(profile, arr, mode, &SimPool::serial())
}

/// [`schedule`] with the FM counting sort sharded over `pool` (per-shard
/// bucket histograms merged in shard order; the block → row assignment
/// itself stays serial because it threads per-row load state). The
/// schedule is bit-identical to the serial build at any worker count.
pub fn schedule_pooled(
    profile: &BlockProfile,
    arr: &CpeArray,
    mode: WeightingMode,
    pool: &SimPool,
) -> RowSchedule {
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); arr.rows()];
    match mode {
        WeightingMode::Baseline => {
            // Block b is pinned to row b (the natural weight placement).
            for v in 0..profile.vertices {
                for b in 0..arr.rows().min(profile.blocks_per_vertex) {
                    let z = profile.block_nnz(v, b);
                    if z > 0 {
                        rows[b].push(z);
                    }
                }
            }
            RowSchedule { rows, lr_moved_blocks: 0, lr_moves: Vec::new() }
        }
        WeightingMode::Fm | WeightingMode::FmLr => {
            fm_schedule(profile, arr, &mut rows, pool);
            // FM bins ascending-nnz values onto ascending-MAC row groups;
            // on degenerate profiles (tiny workloads, single dominant nnz
            // value) that grouping constraint can lose to the pinned
            // placement. The flexible-MAC array can always execute the
            // pinned layout, so take whichever schedule balances better —
            // this makes "FM never worse than baseline" hold by
            // construction, matching the paper's framing of FM as a pure
            // optimization. The comparison is on MAC makespan only: the
            // psum-stall term of the full pass cost depends on buffer
            // parameters the simulation supplies later, and makespan is
            // the §IV objective the FM tests and doctest assert. Ties keep
            // the FM rows.
            let mut sched = RowSchedule { rows, lr_moved_blocks: 0, lr_moves: Vec::new() };
            let pinned = schedule(profile, arr, WeightingMode::Baseline);
            if pinned.makespan(arr) < sched.makespan(arr) {
                sched.rows = pinned.rows;
            }
            if mode == WeightingMode::FmLr {
                sched.lr_moves = redistribute(&mut sched.rows, arr, profile.k);
                sched.lr_moved_blocks = sched.lr_moves.iter().map(|m| m.blocks).sum();
            }
            sched
        }
    }
}

/// FM workload reordering (§IV-C): counting-sort blocks by nnz (linear
/// time, the paper's preprocessing), then hand ascending-nnz bins to
/// ascending-MAC row groups. The bin boundaries are chosen so every group
/// can finish within the same per-row *cycle* level — crucially, cycles
/// (`⌈nnz/|MAC|⌉`), not raw nonzeros, because ultra-sparse blocks waste
/// MAC slots and would overload the small-MAC groups under a plain work
/// split. A value's population may straddle a boundary (the dense-layer
/// case where most blocks share one nnz).
fn fm_schedule(profile: &BlockProfile, arr: &CpeArray, rows: &mut [Vec<u32>], pool: &SimPool) {
    let k = profile.k.max(1);
    // Counting sort by nnz value (1..=k; zeros are skipped outright),
    // sharded: per-shard bucket histograms are accumulated independently
    // and summed value-by-value in shard order — integer addition, so
    // the buckets match the serial scan at any worker count.
    let bucket_parts = pool.map_ranges(profile.nnz.len(), |r| {
        let mut part: Vec<u64> = vec![0; k + 1];
        for &z in &profile.nnz[r] {
            if z > 0 {
                part[z as usize] += 1;
            }
        }
        part
    });
    let mut buckets: Vec<u64> = vec![0; k + 1];
    for part in &bucket_parts {
        for (b, p) in buckets.iter_mut().zip(part) {
            *b += p;
        }
    }
    let groups = arr.num_groups();
    let group_rows: Vec<Vec<usize>> = (0..groups).map(|g| arr.rows_in_group(g)).collect();
    let group_macs: Vec<u64> =
        (0..groups).map(|g| arr.macs_in_row(group_rows[g][0]) as u64).collect();
    let group_row_count: Vec<u64> = group_rows.iter().map(|r| r.len() as u64).collect();

    // Greedy ascending-value fill at per-row cycle budget `level`:
    // `splits[z]` = how many blocks of value z each group takes. Returns
    // None if the budget cannot absorb all blocks (feasibility is
    // monotone in `level`, so a binary search finds the minimum).
    let assign = |level: u64| -> Option<Vec<Vec<(usize, u64)>>> {
        let mut splits: Vec<Vec<(usize, u64)>> = vec![Vec::new(); k + 1];
        let mut g = 0usize;
        let mut used = 0u64;
        for z in 1..=k {
            let mut remaining = buckets[z];
            while remaining > 0 {
                let cost = div_ceil(z as u64, group_macs[g]);
                let budget = group_row_count[g] * level;
                let take = ((budget.saturating_sub(used)) / cost).min(remaining);
                if take > 0 {
                    splits[z].push((g, take));
                    used += take * cost;
                    remaining -= take;
                }
                if remaining > 0 {
                    if g + 1 < groups {
                        g += 1;
                        used = 0;
                    } else {
                        return None;
                    }
                }
            }
        }
        Some(splits)
    };

    // Upper bound: everything in the first group.
    let all_in_first: u64 =
        (1..=k).map(|z| buckets[z] * div_ceil(z as u64, group_macs[0])).sum();
    let mut lo = 0u64;
    let mut hi = div_ceil(all_in_first, group_row_count[0]).max(1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if assign(mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let splits = assign(lo).expect("binary search ends on a feasible level");

    // Hand blocks to rows: within a group, each block goes to the
    // currently least-loaded row (deterministic: ties broken by row
    // order). Blocks of equal nnz are interchangeable, so consuming the
    // per-value splits in vertex order is exact.
    let mut split_cursor: Vec<usize> = vec![0; k + 1];
    let mut split_used: Vec<u64> = vec![0; k + 1];
    let mut row_cycles: Vec<u64> = vec![0; arr.rows()];
    for v in 0..profile.vertices {
        for b in 0..profile.blocks_per_vertex {
            let z = profile.block_nnz(v, b) as usize;
            if z == 0 {
                continue;
            }
            let cursor = &mut split_cursor[z];
            let (mut grp, mut quota) = splits[z][*cursor];
            if split_used[z] >= quota {
                *cursor += 1;
                split_used[z] = 0;
                (grp, quota) = splits[z][*cursor];
            }
            debug_assert!(split_used[z] < quota);
            split_used[z] += 1;
            let row = *group_rows[grp]
                .iter()
                .min_by_key(|&&r| row_cycles[r])
                .expect("groups are nonempty");
            row_cycles[row] += arr.block_cycles(row, z);
            rows[row].push(z as u32);
        }
    }
}

/// LR (§IV-C): pair the i-th most loaded row with the i-th least loaded and
/// greedily move whole blocks from heavy to light while the pair's makespan
/// shrinks. Each move pays the weight-transfer toll of `⌈k/16⌉` cycles on
/// the receiving row. Returns the per-pair offload record.
fn redistribute(rows: &mut [Vec<u32>], arr: &CpeArray, k: usize) -> Vec<LrMove> {
    let m = rows.len();
    let cycles = |r: usize, blocks: &[u32]| -> u64 {
        blocks.iter().map(|&z| arr.block_cycles(r, z as usize)).sum()
    };
    let mut order: Vec<usize> = (0..m).collect();
    let row_cycles: Vec<u64> = (0..m).map(|r| cycles(r, &rows[r])).collect();
    order.sort_by_key(|&r| std::cmp::Reverse(row_cycles[r]));
    let toll = div_ceil(k as u64, LR_WEIGHT_WORDS_PER_CYCLE);

    let mut moves = Vec::new();
    for i in 0..m / 2 {
        let heavy = order[i];
        let light = order[m - 1 - i];
        if heavy == light {
            continue;
        }
        let mut heavy_c = cycles(heavy, &rows[heavy]);
        let mut light_c = cycles(light, &rows[light]);
        // Offload the heavy row's largest blocks first: fewest moves for
        // the most smoothing.
        rows[heavy].sort_unstable_by_key(|&z| std::cmp::Reverse(z));
        let mut moved = 0u64;
        while let Some(&z) = rows[heavy].first() {
            let dh = arr.block_cycles(heavy, z as usize);
            let dl = arr.block_cycles(light, z as usize) + toll;
            let before = heavy_c.max(light_c);
            let after = (heavy_c - dh).max(light_c + dl);
            if after >= before {
                break;
            }
            rows[heavy].remove(0);
            rows[light].push(z);
            heavy_c -= dh;
            light_c += dl;
            moved += 1;
        }
        if moved > 0 {
            moves.push(LrMove { from_row: heavy, to_row: light, blocks: moved });
        }
    }
    moves
}

/// Outcome of the Weighting cycle model for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightingReport {
    /// Active load-balancing mode.
    pub mode: WeightingMode,
    /// Weight-stationary passes (`⌈F_out/N⌉`).
    pub passes: u64,
    /// Per-row busy cycles for **one pass** (the Fig. 16 series).
    pub per_row_cycles: Vec<u64>,
    /// Makespan of one pass (max row + LR toll + MPE stalls).
    pub pass_cycles: u64,
    /// MPE psum stall cycles per pass (§IV-B rabbit/turtle pressure).
    pub mpe_stall_cycles: u64,
    /// LR communication cycles per pass.
    pub lr_overhead_cycles: u64,
    /// Compute cycles for the whole phase (`passes × pass_cycles`).
    pub compute_cycles: u64,
    /// DRAM cycles spent streaming features and weights.
    pub dram_cycles: u64,
    /// Phase total with double-buffered overlap: features for the next
    /// pass stream while the current one computes.
    pub total_cycles: u64,
    /// MAC operations actually issued (zero-skipped).
    pub macs_issued: u64,
    /// MAC operations a dense engine would have issued.
    pub macs_dense: u64,
    /// All-zero blocks skipped.
    pub zero_blocks_skipped: u64,
    /// Blocks moved by LR.
    pub lr_moved_blocks: u64,
    /// Feature bytes streamed from DRAM (all passes).
    pub feature_bytes: u64,
    /// Weight bytes streamed from DRAM.
    pub weight_bytes: u64,
    /// DRAM cycles of the weight stream alone (0 when the weights were
    /// already resident); the per-batch residency accounting of the
    /// serving path reads this.
    pub weight_dram_cycles: u64,
}

impl WeightingReport {
    /// Folds an extra graph-free linear pass into this report (GINConv's
    /// second MLP linear runs as a second Weighting pass on the same
    /// layer, §II / Table III).
    pub fn absorb(&mut self, other: &WeightingReport) {
        self.passes += other.passes;
        self.compute_cycles += other.compute_cycles;
        self.dram_cycles += other.dram_cycles;
        self.total_cycles += other.total_cycles;
        self.macs_issued += other.macs_issued;
        self.macs_dense += other.macs_dense;
        self.zero_blocks_skipped += other.zero_blocks_skipped;
        self.lr_moved_blocks += other.lr_moved_blocks;
        self.feature_bytes += other.feature_bytes;
        self.weight_bytes += other.weight_bytes;
        self.weight_dram_cycles += other.weight_dram_cycles;
        self.mpe_stall_cycles += other.mpe_stall_cycles;
        self.lr_overhead_cycles += other.lr_overhead_cycles;
    }

    /// MAC utilization during compute: issued MACs over MAC-cycles offered.
    pub fn mac_utilization(&self, arr: &CpeArray) -> f64 {
        let offered = self.compute_cycles.saturating_mul(arr.total_macs() as u64) as f64;
        if offered == 0.0 {
            return 0.0;
        }
        // Each issued MAC op is per weight column; one pass covers
        // `cols` columns concurrently.
        (self.macs_issued as f64) / offered
    }
}

/// Parameters of one Weighting invocation.
#[derive(Debug, Clone, Copy)]
pub struct WeightingParams {
    /// Output feature width (`F_out`).
    pub f_out: usize,
    /// Bytes per streamed feature element (RLC pair for the sparse input
    /// layer, raw scalar afterwards).
    pub feature_bytes_per_nnz: u64,
    /// Bytes per weight element (the paper sizes the weight buffer for
    /// 1-byte weights, §VIII-A).
    pub weight_bytes_per_elem: u64,
    /// The layer weights are already resident in the weight buffer (a
    /// previous request of a model-homogeneous serving batch streamed
    /// them): skip the weight DRAM stream entirely.
    pub weights_resident: bool,
}

impl Default for WeightingParams {
    fn default() -> Self {
        WeightingParams {
            f_out: 128,
            feature_bytes_per_nnz: 4,
            weight_bytes_per_elem: 1,
            weights_resident: false,
        }
    }
}

/// Runs the Weighting cycle model for one layer, with the sharded loops
/// sized by `cfg.sim_threads`.
pub fn simulate_weighting(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    profile: &BlockProfile,
    params: WeightingParams,
    dram: &mut HbmModel,
) -> WeightingReport {
    let pool = SimPool::new(cfg.sim_threads);
    simulate_weighting_pooled(cfg, arr, profile, params, dram, &pool)
}

/// [`simulate_weighting`] on an existing worker pool — the engine builds
/// one pool per [`RunSession`](crate::engine::RunSession) and reuses it
/// across every phase.
pub fn simulate_weighting_pooled(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    profile: &BlockProfile,
    params: WeightingParams,
    dram: &mut HbmModel,
    pool: &SimPool,
) -> WeightingReport {
    let mode = WeightingMode::from_config(cfg);
    simulate_weighting_mode_pooled(cfg, arr, profile, params, mode, dram, pool)
}

/// Like [`simulate_weighting`] with an explicit mode (for the Fig. 16/17
/// ablations).
pub fn simulate_weighting_mode(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    profile: &BlockProfile,
    params: WeightingParams,
    mode: WeightingMode,
    dram: &mut HbmModel,
) -> WeightingReport {
    let pool = SimPool::new(cfg.sim_threads);
    simulate_weighting_mode_pooled(cfg, arr, profile, params, mode, dram, &pool)
}

/// The pooled core of the Weighting cycle model. Every sharded loop
/// merges per-shard results in shard order, so the report is
/// bit-identical to a serial run at any worker count.
#[allow(clippy::too_many_arguments)]
pub fn simulate_weighting_mode_pooled(
    cfg: &AcceleratorConfig,
    arr: &CpeArray,
    profile: &BlockProfile,
    params: WeightingParams,
    mode: WeightingMode,
    dram: &mut HbmModel,
    pool: &SimPool,
) -> WeightingReport {
    let sched = schedule_pooled(profile, arr, mode, pool);
    let per_row_cycles = sched.per_row_cycles(arr);
    let max_row = per_row_cycles.iter().copied().max().unwrap_or(0);

    let lr_overhead_cycles =
        sched.lr_moved_blocks * div_ceil(profile.k as u64, LR_WEIGHT_WORDS_PER_CYCLE);
    let mpe_stall_cycles = mpe::psum_stall_cycles(
        &per_row_cycles,
        profile.vertices as u64,
        cfg.mpe_psum_slots as u64,
    );
    let pass_cycles = max_row + lr_overhead_cycles + mpe_stall_cycles;

    let passes = div_ceil(params.f_out.max(1) as u64, arr.cols() as u64);
    let compute_cycles = passes * pass_cycles;

    // DRAM traffic: features stream once per pass (weight-stationary);
    // weights stream once per layer — or not at all when a serving batch
    // already made them resident.
    let nnz = profile.total_nnz_pooled(pool);
    let feature_bytes = passes * nnz * params.feature_bytes_per_nnz;
    let weight_bytes = if params.weights_resident {
        0
    } else {
        (profile.f_in as u64) * (params.f_out as u64) * params.weight_bytes_per_elem
    };
    let mut dram_cycles = dram.read_seq(feature_bytes);
    let weight_dram_cycles = dram.read_seq(weight_bytes);
    dram_cycles += weight_dram_cycles;

    // Double buffering (§III): fetch of pass p+1 overlaps compute of pass
    // p, so the phase is bounded by the slower of the two streams plus one
    // pipeline fill.
    let fetch_per_pass = div_ceil(dram_cycles, passes.max(1));
    let steady = compute_cycles.max(dram_cycles);
    let total_cycles = steady + fetch_per_pass;

    let macs_issued = nnz * params.f_out as u64;
    let macs_dense = (profile.vertices as u64) * (profile.f_in as u64) * (params.f_out as u64);

    WeightingReport {
        mode,
        passes,
        per_row_cycles,
        pass_cycles,
        mpe_stall_cycles,
        lr_overhead_cycles,
        compute_cycles,
        dram_cycles,
        total_cycles,
        macs_issued,
        macs_dense,
        zero_blocks_skipped: profile.zero_blocks_pooled(pool),
        lr_moved_blocks: sched.lr_moved_blocks,
        feature_bytes,
        weight_bytes,
        weight_dram_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use gnnie_graph::{Dataset, SyntheticDataset};
    use gnnie_tensor::SparseVec;

    fn paper_cfg() -> (AcceleratorConfig, CpeArray) {
        let cfg = AcceleratorConfig::paper(Dataset::Cora);
        let arr = CpeArray::new(&cfg);
        (cfg, arr)
    }

    fn sparse_features(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        // Deterministic pseudo-sparse rows with varying density.
        let mut srows = Vec::with_capacity(rows);
        for r in 0..rows {
            let density = 1 + (r * 7 + seed as usize) % 20;
            let mut dense = vec![0.0f32; cols];
            for c in (0..cols).step_by(21 - density) {
                dense[c] = 1.0 + (c % 3) as f32;
            }
            srows.push(SparseVec::from_dense(&dense));
        }
        CsrMatrix::from_sparse_rows(cols, &srows)
    }

    #[test]
    fn block_profile_counts_nnz_per_block() {
        let features = sparse_features(4, 64, 1);
        let p = BlockProfile::from_sparse(&features, 16);
        assert_eq!(p.k(), 4);
        let total: u64 =
            (0..4).map(|v| (0..16).map(|b| p.block_nnz(v, b) as u64).sum::<u64>()).sum();
        assert_eq!(total, features.nnz() as u64);
        assert_eq!(total, p.total_nnz());
    }

    #[test]
    fn dense_profile_fills_every_block() {
        let p = BlockProfile::dense(3, 40, 16);
        assert_eq!(p.k(), 3, "ceil(40/16)");
        // Blocks cover 40 elements: 13 blocks of 3 plus one block of 1.
        let per_vertex: u32 = (0..16).map(|b| p.block_nnz(0, b)).sum();
        assert_eq!(per_vertex, 40);
        assert_eq!(p.total_nnz(), 120);
        // Trailing blocks beyond F_in are zero (skipped).
        assert_eq!(p.block_nnz(0, 14), 0);
    }

    #[test]
    fn baseline_pins_blocks_to_rows() {
        let features = sparse_features(10, 64, 3);
        let (_, arr) = paper_cfg();
        let p = BlockProfile::from_sparse(&features, 16);
        let s = schedule(&p, &arr, WeightingMode::Baseline);
        // Row b sees exactly the nonzero blocks with index b.
        for b in 0..16 {
            let expected: Vec<u32> =
                (0..10).map(|v| p.block_nnz(v, b)).filter(|&z| z > 0).collect();
            assert_eq!(s.rows[b], expected, "row {b}");
        }
    }

    #[test]
    fn schedules_conserve_work() {
        let features = sparse_features(50, 256, 5);
        let (_, arr) = paper_cfg();
        let p = BlockProfile::from_sparse(&features, 16);
        for mode in [WeightingMode::Baseline, WeightingMode::Fm, WeightingMode::FmLr] {
            let s = schedule(&p, &arr, mode);
            let scheduled: u64 = s.rows.iter().flat_map(|r| r.iter().map(|&z| z as u64)).sum();
            assert_eq!(scheduled, p.total_nnz(), "{mode} must conserve nnz");
        }
    }

    #[test]
    fn fm_reduces_imbalance_on_real_features() {
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.3, 7);
        let (_, arr) = paper_cfg();
        let p = BlockProfile::from_sparse(&ds.features, 16);
        let base = schedule(&p, &arr, WeightingMode::Baseline).per_row_cycles(&arr);
        let fm = schedule(&p, &arr, WeightingMode::Fm).per_row_cycles(&arr);
        let spread = |c: &[u64]| c.iter().max().unwrap() - c.iter().min().unwrap();
        assert!(
            spread(&fm) < spread(&base),
            "FM must narrow the row spread: baseline {base:?} fm {fm:?}"
        );
        assert!(fm.iter().max() <= base.iter().max(), "FM must not worsen the makespan");
    }

    #[test]
    fn lr_further_reduces_makespan_or_keeps_it() {
        let ds = SyntheticDataset::generate(Dataset::Citeseer, 0.3, 9);
        let (_, arr) = paper_cfg();
        let p = BlockProfile::from_sparse(&ds.features, 16);
        let fm = schedule(&p, &arr, WeightingMode::Fm).per_row_cycles(&arr);
        let lr_sched = schedule(&p, &arr, WeightingMode::FmLr);
        let lr = lr_sched.per_row_cycles(&arr);
        assert!(lr.iter().max() <= fm.iter().max(), "LR must not increase the makespan");
    }

    #[test]
    fn pooled_paths_match_serial_at_any_width() {
        use gnnie_mem::SimThreads;
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.3, 5);
        let (mut cfg, arr) = paper_cfg();
        let serial = BlockProfile::from_sparse(&ds.features, 16);
        cfg.sim_threads = SimThreads::Fixed(1);
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let serial_report =
            simulate_weighting(&cfg, &arr, &serial, WeightingParams::default(), &mut dram);
        for width in [2usize, 4, 8] {
            let pool = SimPool::new(SimThreads::Fixed(width));
            let pooled = BlockProfile::from_sparse_pooled(&ds.features, 16, &pool);
            assert_eq!(pooled, serial, "profile diverged at width {width}");
            assert_eq!(serial.total_nnz(), serial.total_nnz_pooled(&pool));
            assert_eq!(serial.zero_blocks(), serial.zero_blocks_pooled(&pool));
            for mode in [WeightingMode::Baseline, WeightingMode::Fm, WeightingMode::FmLr] {
                assert_eq!(
                    schedule_pooled(&serial, &arr, mode, &pool),
                    schedule(&serial, &arr, mode),
                    "{mode} schedule diverged at width {width}"
                );
            }
            cfg.sim_threads = SimThreads::Fixed(width);
            let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
            let report =
                simulate_weighting(&cfg, &arr, &pooled, WeightingParams::default(), &mut dram);
            assert_eq!(report, serial_report, "report diverged at width {width}");
        }
    }

    #[test]
    fn simulate_produces_consistent_report() {
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.2, 3);
        let (cfg, arr) = paper_cfg();
        let p = BlockProfile::from_sparse(&ds.features, 16);
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let r = simulate_weighting(&cfg, &arr, &p, WeightingParams::default(), &mut dram);
        assert_eq!(r.mode, WeightingMode::FmLr);
        assert_eq!(r.passes, 8); // ceil(128/16)
        assert_eq!(r.per_row_cycles.len(), 16);
        assert!(r.total_cycles >= r.compute_cycles.max(r.dram_cycles));
        assert_eq!(r.macs_issued, p.total_nnz() * 128);
        assert!(r.macs_issued < r.macs_dense, "zero-skipping must pay off on Cora");
        assert!(r.mac_utilization(&arr) > 0.0 && r.mac_utilization(&arr) <= 1.0);
    }

    #[test]
    fn more_macs_never_slow_a_pass() {
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.2, 3);
        let p = BlockProfile::from_sparse(&ds.features, 16);
        let mut last = u64::MAX;
        for design in [Design::A, Design::B, Design::C, Design::D] {
            let cfg = AcceleratorConfig::with_design(design, 256 * 1024);
            let arr = CpeArray::new(&cfg);
            let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
            let r = simulate_weighting_mode(
                &cfg,
                &arr,
                &p,
                WeightingParams::default(),
                WeightingMode::Baseline,
                &mut dram,
            );
            // The guarantee is on pure MAC time: with uniformly more
            // MACs per CPE, every pinned block's ⌈nnz/|MAC|⌉ shrinks or
            // holds, so the pass makespan is non-increasing. Full
            // compute_cycles also carries the psum-stall term, which
            // tracks the *spread* of row finish times and is legitimately
            // non-monotone in MAC count (fast rows can outrun the psum
            // retire path), so it is not asserted here.
            let makespan = r.per_row_cycles.iter().copied().max().unwrap_or(0);
            assert!(
                makespan <= last,
                "{design:?} makespan {makespan} should not exceed previous {last}"
            );
            last = makespan;
        }
    }

    #[test]
    fn resident_weights_skip_the_weight_stream() {
        let ds = SyntheticDataset::generate(Dataset::Cora, 0.2, 3);
        let (cfg, arr) = paper_cfg();
        let p = BlockProfile::from_sparse(&ds.features, 16);
        let mut dram_cold = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let cold =
            simulate_weighting(&cfg, &arr, &p, WeightingParams::default(), &mut dram_cold);
        let mut dram_hot = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let hot = simulate_weighting(
            &cfg,
            &arr,
            &p,
            WeightingParams { weights_resident: true, ..WeightingParams::default() },
            &mut dram_hot,
        );
        assert!(cold.weight_bytes > 0 && cold.weight_dram_cycles > 0);
        assert_eq!(hot.weight_bytes, 0);
        assert_eq!(hot.weight_dram_cycles, 0);
        assert_eq!(hot.dram_cycles + cold.weight_dram_cycles, cold.dram_cycles);
        assert!(hot.total_cycles <= cold.total_cycles);
        // Compute is untouched; only the weight stream disappears.
        assert_eq!(hot.compute_cycles, cold.compute_cycles);
        assert_eq!(
            dram_hot.counters().seq_read_bytes + cold.weight_bytes,
            dram_cold.counters().seq_read_bytes
        );
    }

    #[test]
    fn empty_features_cost_nothing_to_compute() {
        let (cfg, arr) = paper_cfg();
        let features = CsrMatrix::from_sparse_rows(64, &vec![SparseVec::zeros(64); 4]);
        let p = BlockProfile::from_sparse(&features, 16);
        let mut dram = HbmModel::hbm2_256gbps(cfg.clock_hz);
        let r = simulate_weighting(&cfg, &arr, &p, WeightingParams::default(), &mut dram);
        assert_eq!(r.macs_issued, 0);
        assert_eq!(r.per_row_cycles.iter().sum::<u64>(), 0);
    }

    #[test]
    fn dense_profile_balances_rows_nearly_evenly() {
        let (_, arr) = paper_cfg();
        let p = BlockProfile::dense(100, 128, 16);
        // Dense blocks all have nnz = 8: FM gives more blocks to rows with
        // more MACs, roughly equalizing cycles.
        let fm = schedule(&p, &arr, WeightingMode::Fm).per_row_cycles(&arr);
        let max = *fm.iter().max().unwrap() as f64;
        let min = *fm.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.6, "dense FM spread too wide: {fm:?}");
    }
}
