//! GAT attention cost models (paper §V-A/V-B).
//!
//! The paper's key GAT contribution is reordering the attention
//! computation: instead of evaluating the 2F-dimensional inner product
//! `aᵀ·[ηw_i ‖ ηw_j]` per edge (`O(|V|·|E|)` in the worst case and
//! `O(|E|·F)` multiplies in any case), GNNIE computes per-vertex partials
//! `e_{i,1} = a₁ᵀ·ηw_i` and `e_{i,2} = a₂ᵀ·ηw_i` once (`O(|V|·F)`), then
//! needs only one add per edge (`O(|E|)`). This module quantifies both
//! orderings so the ablation bench can demonstrate the asymptotic claim.
//!
//! # Example
//!
//! ```
//! use gnnie_core::gat::AttentionCost;
//!
//! // Pubmed-scale: 19.7k vertices, 44k undirected edges, F = 128.
//! let linear = AttentionCost::linear(19_717, 44_324, 128);
//! let naive = AttentionCost::naive(19_717, 44_324, 128);
//! // The reordering pays O(|V|·F) once instead of O(|E|·F) per edge.
//! assert!(linear.dot_macs < naive.dot_macs);
//! assert!(linear.compute_cycles(1216) < naive.compute_cycles(1216));
//! ```

use serde::{Deserialize, Serialize};

use crate::cpe::div_ceil;

/// Operation counts of one attention-coefficient computation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttentionCost {
    /// Multiply-accumulate operations for the dot products.
    pub dot_macs: u64,
    /// Scalar additions on edges (`e_{i,1} + e_{j,2}`).
    pub edge_adds: u64,
    /// Feature-vector loads from the property array (memory pressure).
    pub vector_loads: u64,
}

impl AttentionCost {
    /// GNNIE's reordered computation (§V-A): two F-dim dot products per
    /// vertex, one add per directed edge (including the self edge).
    pub fn linear(vertices: u64, edges: u64, f: u64) -> Self {
        AttentionCost {
            dot_macs: 2 * vertices * f,
            edge_adds: 2 * edges + vertices,
            vector_loads: vertices,
        }
    }

    /// The naïve per-edge computation: both halves of the inner product
    /// re-evaluated for every directed edge, re-fetching `ηw_j` each time.
    pub fn naive(vertices: u64, edges: u64, f: u64) -> Self {
        let contribs = 2 * edges + vertices;
        AttentionCost {
            dot_macs: 2 * contribs * f,
            edge_adds: contribs,
            vector_loads: contribs,
        }
    }

    /// Total scalar operations.
    pub fn total_ops(&self) -> u64 {
        2 * self.dot_macs + self.edge_adds
    }

    /// Ideal compute cycles on an array with `total_macs` MAC units
    /// (the dot products are dense, so "load balancing is unnecessary",
    /// §V-B).
    pub fn compute_cycles(&self, total_macs: u64) -> u64 {
        div_ceil(self.dot_macs, total_macs.max(1)) + div_ceil(self.edge_adds, total_macs.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_complexity() {
        let c = AttentionCost::linear(100, 500, 64);
        // O(|V|·F) MACs, O(|V|+|E|) adds.
        assert_eq!(c.dot_macs, 2 * 100 * 64);
        assert_eq!(c.edge_adds, 2 * 500 + 100);
        assert_eq!(c.vector_loads, 100);
    }

    #[test]
    fn naive_is_edge_proportional() {
        let c = AttentionCost::naive(100, 500, 64);
        assert_eq!(c.dot_macs, 2 * 1100 * 64);
        assert_eq!(c.vector_loads, 1100);
    }

    #[test]
    fn reordering_wins_whenever_graph_has_edges() {
        for (v, e, f) in [(100u64, 300u64, 32u64), (1000, 10_000, 128), (50, 49, 16)] {
            let lin = AttentionCost::linear(v, e, f);
            let nai = AttentionCost::naive(v, e, f);
            assert!(lin.total_ops() < nai.total_ops(), "v={v} e={e} f={f}");
            assert!(lin.compute_cycles(1216) <= nai.compute_cycles(1216));
        }
    }

    #[test]
    fn speedup_grows_with_mean_degree() {
        let f = 128;
        let sparse = AttentionCost::naive(1000, 2000, f).total_ops() as f64
            / AttentionCost::linear(1000, 2000, f).total_ops() as f64;
        let dense = AttentionCost::naive(1000, 50_000, f).total_ops() as f64
            / AttentionCost::linear(1000, 50_000, f).total_ops() as f64;
        assert!(dense > sparse, "denser graphs should benefit more: {dense} vs {sparse}");
    }

    #[test]
    fn cycles_scale_down_with_macs() {
        let c = AttentionCost::linear(10_000, 100_000, 128);
        assert!(c.compute_cycles(2432) < c.compute_cycles(1216));
    }
}
