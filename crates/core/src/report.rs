//! Inference reports: the per-phase cycle, traffic, and energy record a
//! simulation run produces. Everything the bench harness prints for the
//! paper's tables and figures comes out of these structures.

use serde::{Deserialize, Serialize};

use gnnie_gnn::model::GnnModel;
use gnnie_graph::Dataset;
use gnnie_mem::{DramCounters, EnergyLedger};

use crate::aggregation::AggregationReport;
use crate::weighting::WeightingReport;

/// One layer's phase pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer index (0 = input layer).
    pub layer: usize,
    /// Weighting phase (including any extra graph-free linear passes).
    pub weighting: WeightingReport,
    /// Aggregation phase.
    pub aggregation: AggregationReport,
}

/// A named phase and its cycle count, for coarse summaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name (e.g. "weighting", "aggregation", "preprocessing").
    pub name: String,
    /// Cycles attributed to the phase.
    pub cycles: u64,
}

/// The full record of one inference simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceReport {
    /// The GNN model simulated.
    pub model: GnnModel,
    /// The dataset identity.
    pub dataset: Dataset,
    /// Scale the dataset was generated at (1.0 = paper size).
    pub scale: f64,
    /// Vertices in the simulated graph.
    pub vertices: u64,
    /// Undirected edges in the simulated graph.
    pub edges: u64,
    /// One-time preprocessing cycles (degree sort + workload binning;
    /// included in every speedup, §VIII-B).
    pub preprocessing_cycles: u64,
    /// Per-layer phase reports.
    pub layers: Vec<LayerReport>,
    /// DiffPool-only: coarsening matmul cycles.
    pub coarsening_cycles: u64,
    /// Final writeback cycles.
    pub writeback_cycles: u64,
    /// End-to-end cycles.
    pub total_cycles: u64,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Per-component energy.
    pub energy: EnergyLedger,
    /// DRAM byte/transaction counters for the whole run.
    pub dram: DramCounters,
    /// Zero-skipped effective operations executed (for TOPS).
    pub effective_ops: u64,
    /// Cycles spent streaming layer weights from DRAM across all
    /// Weighting phases (0 when the run reused weights a serving-batch
    /// leader already made resident).
    pub weight_load_cycles: u64,
    /// Whether this run skipped its weight loads because a batch leader's
    /// weights were still resident (batched serving followers).
    pub weights_resident: bool,
}

impl InferenceReport {
    /// Total Weighting cycles across layers.
    pub fn weighting_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.weighting.total_cycles).sum()
    }

    /// Total Aggregation cycles across layers.
    pub fn aggregation_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.aggregation.total_cycles).sum()
    }

    /// Boundary feature bytes moved over the inter-chip link across all
    /// layers (0 on a single-chip run).
    pub fn inter_chip_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.aggregation.inter_chip_bytes).sum()
    }

    /// Inter-chip link cycles across all layers (0 on a single-chip run).
    pub fn inter_chip_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.aggregation.inter_chip_cycles).sum()
    }

    /// Per-tier feature-cache accounting summed over all layers, in
    /// stack order (on-chip first). Empty unless the run used a tiered
    /// hierarchy (`AcceleratorConfig::tiers`); tier stacks line up
    /// positionally across layers.
    pub fn tier_stats(&self) -> Vec<gnnie_mem::TierStats> {
        let mut merged: Vec<gnnie_mem::TierStats> = Vec::new();
        for layer in &self.layers {
            let Some(cache) = layer.aggregation.cache.as_ref() else { continue };
            if merged.is_empty() {
                merged = cache.tiers.clone();
            } else {
                for (a, t) in merged.iter_mut().zip(&cache.tiers) {
                    a.merge(t);
                }
            }
        }
        merged
    }

    /// Effective throughput in TOPS (executed ops over latency).
    ///
    /// A degenerate run (zero cycles, hence zero or non-finite latency)
    /// reports 0.0 rather than dividing into NaN/inf.
    pub fn effective_tops(&self) -> f64 {
        if !self.latency_s.is_finite() || self.latency_s <= 0.0 {
            return 0.0;
        }
        self.effective_ops as f64 / self.latency_s / 1e12
    }

    /// Inferences per kilojoule (Fig. 15's metric).
    ///
    /// A run with zero (or non-finite) recorded energy reports 0.0
    /// rather than dividing into NaN/inf.
    pub fn inferences_per_kj(&self) -> f64 {
        let joules = self.energy.total_joules();
        if !joules.is_finite() || joules <= 0.0 {
            return 0.0;
        }
        1000.0 / joules
    }

    /// Coarse per-phase summary rows.
    pub fn phases(&self) -> Vec<PhaseReport> {
        let mut v = vec![
            PhaseReport { name: "preprocessing".into(), cycles: self.preprocessing_cycles },
            PhaseReport { name: "weighting".into(), cycles: self.weighting_cycles() },
            PhaseReport { name: "aggregation".into(), cycles: self.aggregation_cycles() },
        ];
        if self.coarsening_cycles > 0 {
            v.push(PhaseReport { name: "coarsening".into(), cycles: self.coarsening_cycles });
        }
        v.push(PhaseReport { name: "writeback".into(), cycles: self.writeback_cycles });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> InferenceReport {
        InferenceReport {
            model: GnnModel::Gcn,
            dataset: Dataset::Cora,
            scale: 1.0,
            vertices: 10,
            edges: 20,
            preprocessing_cycles: 5,
            layers: Vec::new(),
            coarsening_cycles: 0,
            writeback_cycles: 2,
            total_cycles: 100,
            latency_s: 100.0 / 1.3e9,
            energy: EnergyLedger::new(),
            dram: DramCounters::default(),
            effective_ops: 1_000,
            weight_load_cycles: 0,
            weights_resident: false,
        }
    }

    #[test]
    fn tops_and_inferences_per_kj() {
        let mut r = empty_report();
        assert!(r.effective_tops() > 0.0);
        assert_eq!(r.inferences_per_kj(), 0.0, "no energy recorded yet");
        r.energy.add(gnnie_mem::Component::Mac, 1e9); // 1 mJ
        assert!((r.inferences_per_kj() - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    fn phases_include_coarsening_only_when_present() {
        let mut r = empty_report();
        assert_eq!(r.phases().len(), 4);
        r.coarsening_cycles = 7;
        let names: Vec<String> = r.phases().into_iter().map(|p| p.name).collect();
        assert!(names.contains(&"coarsening".to_string()));
    }

    #[test]
    fn zero_latency_yields_zero_tops() {
        let mut r = empty_report();
        r.latency_s = 0.0;
        assert_eq!(r.effective_tops(), 0.0);
    }

    #[test]
    fn degenerate_denominators_never_produce_nan_or_inf() {
        // Zero cycles → zero latency, zero energy: both Fig. 15 metrics
        // must degrade to 0.0, not NaN/inf.
        let mut r = empty_report();
        r.total_cycles = 0;
        r.latency_s = 0.0;
        assert_eq!(r.effective_tops(), 0.0);
        assert_eq!(r.inferences_per_kj(), 0.0);
        // Propagated NaN/inf latencies are also caught.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            r.latency_s = bad;
            let tops = r.effective_tops();
            assert!(tops.is_finite() && tops == 0.0, "latency {bad}: got {tops}");
        }
        // (Negative/non-finite ledger entries are rejected at the source:
        // EnergyLedger::add panics on them, so zero is the only degenerate
        // energy a report can carry.)
    }
}
